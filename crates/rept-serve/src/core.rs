//! The serving core: one ingest thread driving an engine-aware
//! [`ResumableRun`], snapshot publication, and crash-safe checkpoints.
//!
//! [`ServeCore`] is the transport-free heart of the subsystem — the TCP
//! front-end ([`crate::server`]), the benches and the tests all drive
//! this same type. Producers push edge batches into a **bounded**
//! channel (backpressure, like the cluster simulation's network links);
//! the single ingest thread applies them in arrival order, which keeps
//! the estimator state — and therefore every checkpoint — a pure
//! function of the edge sequence, the config and the engine. Queries
//! read the last published [`Snapshot`] and never touch the ingest
//! thread at all.
//!
//! ## Crash safety
//!
//! With a checkpoint path configured, the core checkpoints the complete
//! estimator state (RPCK v2, write-then-rename) every
//! `checkpoint_every` edges, on demand, and at shutdown. On startup,
//! an existing checkpoint is loaded and the run resumes from its
//! recorded position; the producer replays the stream from
//! [`ServeCore::position`]. Because the driver is deterministic and
//! batch-split-insensitive, a kill-and-restart cycle is bit-identical
//! to an uninterrupted run — the serve proptests assert this for every
//! engine.

use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use rept_core::resume::{ResumableRun, SnapshotError};
use rept_core::{Engine, Rept, ReptConfig, ReptEstimate};
use rept_graph::edge::Edge;

use crate::snapshot::{Published, Snapshot};

/// Configuration of a [`ServeCore`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The estimator configuration. Enable η tracking
    /// ([`ReptConfig::with_eta`]) if global queries should always carry
    /// a confidence interval.
    pub rept: ReptConfig,
    /// Execution engine (default: [`Engine::FusedSorted`]).
    pub engine: Engine,
    /// Edges between automatic snapshot publications. Snapshot assembly
    /// clones the counter state, so this trades query freshness against
    /// ingest throughput.
    pub snapshot_every: u64,
    /// Edges between automatic checkpoints (`None` = only on demand and
    /// at shutdown). Ignored without a checkpoint path.
    pub checkpoint_every: Option<u64>,
    /// Checkpoint file; also the resume source at startup.
    pub checkpoint_path: Option<PathBuf>,
    /// Size of the top-k local-count index kept in each snapshot.
    pub top_k: usize,
    /// Ingest channel capacity in batches (bounded ⇒ producers feel
    /// backpressure instead of growing an unbounded queue).
    pub channel_capacity: usize,
}

impl ServeConfig {
    /// Defaults: fused-sorted engine, snapshot every 8192 edges, top-100
    /// index, 16-batch channel, no checkpointing.
    pub fn new(rept: ReptConfig) -> Self {
        Self {
            rept,
            engine: Engine::default(),
            snapshot_every: 8192,
            checkpoint_every: None,
            checkpoint_path: None,
            top_k: 100,
            channel_capacity: 16,
        }
    }

    /// Selects the execution engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the snapshot publication interval (edges).
    pub fn with_snapshot_every(mut self, edges: u64) -> Self {
        self.snapshot_every = edges.max(1);
        self
    }

    /// Enables checkpointing to `path`, with an optional automatic
    /// interval in edges.
    pub fn with_checkpoint(mut self, path: PathBuf, every: Option<u64>) -> Self {
        self.checkpoint_path = Some(path);
        self.checkpoint_every = every;
        self
    }

    /// Sets the top-k index size.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }
}

/// Control messages the ingest thread consumes, in arrival order.
enum Control {
    /// Apply a batch of stream edges.
    Ingest(Vec<Edge>),
    /// Publish a fresh snapshot, then reply with the position — a
    /// barrier: everything queued before it is applied first.
    Flush(SyncSender<u64>),
    /// Write a checkpoint (and publish), then reply with the position.
    Checkpoint(SyncSender<Result<u64, String>>),
    /// Drain and exit the ingest loop.
    Shutdown,
}

/// The running serving core. Dropping it (or calling
/// [`Self::shutdown`]) stops the ingest thread, writing a final
/// checkpoint when a path is configured.
#[derive(Debug)]
pub struct ServeCore {
    tx: SyncSender<Control>,
    published: Arc<Published<Snapshot>>,
    ingest: Option<JoinHandle<ResumableRun>>,
    cfg: ServeConfig,
}

impl ServeCore {
    /// Starts the core: resumes from the configured checkpoint if one
    /// exists on disk, otherwise starts a fresh run; then spawns the
    /// ingest thread and publishes the initial snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when an existing checkpoint cannot be decoded
    /// or disagrees with the requested config/engine — resuming under a
    /// different configuration would silently produce garbage, so it is
    /// refused.
    pub fn start(cfg: ServeConfig) -> Result<Self, SnapshotError> {
        let run = match &cfg.checkpoint_path {
            Some(path) if path.exists() => {
                let run = ResumableRun::from_checkpoint_file(path)?;
                if run.config() != &cfg.rept {
                    return Err(SnapshotError::Invalid("checkpoint/config mismatch"));
                }
                if run.engine() != cfg.engine {
                    return Err(SnapshotError::Invalid("checkpoint/engine mismatch"));
                }
                run
            }
            _ => ResumableRun::with_engine(Rept::new(cfg.rept), cfg.engine),
        };

        let initial = Snapshot::from_estimate(
            &run.estimate(),
            &cfg.rept,
            cfg.engine,
            run.position(),
            0,
            0,
            cfg.top_k,
        );
        let published = Arc::new(Published::new(initial));
        let (tx, rx) = sync_channel::<Control>(cfg.channel_capacity.max(1));

        let thread_published = Arc::clone(&published);
        let thread_cfg = cfg.clone();
        let ingest = std::thread::Builder::new()
            .name("rept-serve-ingest".into())
            .spawn(move || ingest_loop(run, rx, thread_published, thread_cfg))
            .expect("spawn ingest thread");

        Ok(Self {
            tx,
            published,
            ingest: Some(ingest),
            cfg,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Queues a batch of edges for ingestion. Blocks when the bounded
    /// channel is full (backpressure).
    pub fn ingest(&self, edges: Vec<Edge>) {
        if edges.is_empty() {
            return;
        }
        self.tx
            .send(Control::Ingest(edges))
            .expect("ingest thread alive");
    }

    /// The latest published snapshot — the query path. Lock-free apart
    /// from one pointer clone; never blocks ingestion.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published.load()
    }

    /// Barrier: waits until everything queued so far is applied and a
    /// fresh snapshot is published; returns the stream position.
    pub fn flush(&self) -> u64 {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send(Control::Flush(reply_tx))
            .expect("ingest thread alive");
        reply_rx.recv().expect("ingest thread replies")
    }

    /// Writes a checkpoint now (after draining everything queued so
    /// far); returns the checkpointed position.
    ///
    /// # Errors
    ///
    /// A description when no checkpoint path is configured or the write
    /// fails.
    pub fn checkpoint(&self) -> Result<u64, String> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send(Control::Checkpoint(reply_tx))
            .expect("ingest thread alive");
        reply_rx.recv().expect("ingest thread replies")
    }

    /// The position of the last published snapshot. After
    /// [`Self::flush`] this is the exact number of edges applied —
    /// the replay point a restarted producer resumes from.
    pub fn position(&self) -> u64 {
        self.snapshot().position
    }

    /// Stops the ingest thread (draining queued work, writing the final
    /// checkpoint when configured) and returns the final estimate.
    pub fn shutdown(mut self) -> ReptEstimate {
        self.tx
            .send(Control::Shutdown)
            .expect("ingest thread alive");
        let run = self
            .ingest
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("ingest thread panicked");
        run.finalize()
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        if let Some(handle) = self.ingest.take() {
            // Best effort: the thread may already be gone.
            let _ = self.tx.send(Control::Shutdown);
            let _ = handle.join();
        }
    }
}

/// The ingest thread body.
fn ingest_loop(
    mut run: ResumableRun,
    rx: std::sync::mpsc::Receiver<Control>,
    published: Arc<Published<Snapshot>>,
    cfg: ServeConfig,
) -> ResumableRun {
    let mut seq = 0u64;
    let mut checkpoints = 0u64;
    let mut since_snapshot = 0u64;
    let mut since_checkpoint = 0u64;

    let publish = |run: &ResumableRun, seq: &mut u64, checkpoints: u64| {
        *seq += 1;
        published.store(Snapshot::from_estimate(
            &run.estimate(),
            &cfg.rept,
            cfg.engine,
            run.position(),
            *seq,
            checkpoints,
            cfg.top_k,
        ));
    };
    let write_checkpoint = |run: &ResumableRun| -> Result<u64, String> {
        let path = cfg
            .checkpoint_path
            .as_ref()
            .ok_or_else(|| "no checkpoint path configured".to_string())?;
        run.checkpoint_to_file(path)
            .map_err(|e| format!("checkpoint write failed: {e}"))?;
        Ok(run.position())
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            Control::Ingest(batch) => {
                let n = batch.len() as u64;
                run.process_batch(&batch);
                since_snapshot += n;
                since_checkpoint += n;
                if since_snapshot >= cfg.snapshot_every {
                    publish(&run, &mut seq, checkpoints);
                    since_snapshot = 0;
                }
                if let Some(every) = cfg.checkpoint_every {
                    if cfg.checkpoint_path.is_some() && since_checkpoint >= every {
                        // Periodic checkpoints are best-effort; an
                        // unwritable path surfaces on the explicit
                        // `Checkpoint` request instead of killing ingest.
                        checkpoints += write_checkpoint(&run).is_ok() as u64;
                        since_checkpoint = 0;
                    }
                }
            }
            Control::Flush(reply) => {
                publish(&run, &mut seq, checkpoints);
                since_snapshot = 0;
                let _ = reply.send(run.position());
            }
            Control::Checkpoint(reply) => {
                let result = write_checkpoint(&run);
                checkpoints += result.is_ok() as u64;
                publish(&run, &mut seq, checkpoints);
                since_snapshot = 0;
                since_checkpoint = 0;
                let _ = reply.send(result);
            }
            Control::Shutdown => break,
        }
    }
    // Final checkpoint + snapshot so a restart resumes from the exact
    // shutdown position (and the last snapshot reflects the write).
    if cfg.checkpoint_path.is_some() {
        checkpoints += write_checkpoint(&run).is_ok() as u64;
    }
    publish(&run, &mut seq, checkpoints);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use rept_gen::{barabasi_albert, GeneratorConfig};

    fn stream() -> Vec<Edge> {
        barabasi_albert(&GeneratorConfig::new(400, 5), 4)
    }

    fn base_cfg() -> ReptConfig {
        ReptConfig::new(3, 7).with_seed(9).with_eta(true)
    }

    fn temp_ckpt(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rept-serve-{tag}-{}.rpck", std::process::id()))
    }

    #[test]
    fn ingest_then_flush_matches_batch_run() {
        let stream = stream();
        let oracle = Rept::new(base_cfg()).run_sequential(stream.iter().copied());
        let core = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        for chunk in stream.chunks(97) {
            core.ingest(chunk.to_vec());
        }
        let pos = core.flush();
        assert_eq!(pos, stream.len() as u64);
        let snap = core.snapshot();
        assert_eq!(snap.position, pos);
        assert_eq!(snap.global, oracle.global);
        assert_eq!(snap.eta_hat, oracle.eta_hat);
        assert!(snap.confidence95.is_some(), "η tracked ⇒ interval");
        let final_est = core.shutdown();
        assert_eq!(final_est.global, oracle.global);
        assert_eq!(final_est.locals, oracle.locals);
    }

    #[test]
    fn snapshots_are_isolated_from_ingest() {
        let stream = stream();
        let core = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        core.ingest(stream[..200].to_vec());
        core.flush();
        let early = core.snapshot();
        core.ingest(stream[200..].to_vec());
        core.flush();
        let late = core.snapshot();
        // The early Arc is untouched by later ingestion.
        assert_eq!(early.position, 200);
        assert_eq!(late.position, stream.len() as u64);
        assert!(late.seq > early.seq);
        core.shutdown();
    }

    #[test]
    fn checkpoint_restart_resumes_bit_identically() {
        let stream = stream();
        let oracle = Rept::new(base_cfg()).run_sequential(stream.iter().copied());
        let path = temp_ckpt("core-resume");
        std::fs::remove_file(&path).ok();

        let cfg = ServeConfig::new(base_cfg()).with_checkpoint(path.clone(), None);
        let core = ServeCore::start(cfg.clone()).expect("start");
        let split = stream.len() / 3;
        core.ingest(stream[..split].to_vec());
        let pos = core.checkpoint().expect("checkpoint");
        assert_eq!(pos, split as u64);
        drop(core); // simulate a crash after the checkpoint

        let resumed = ServeCore::start(cfg).expect("resume");
        assert_eq!(resumed.position(), split as u64, "replay point");
        resumed.ingest(stream[split..].to_vec());
        resumed.flush();
        let snap = resumed.snapshot();
        assert_eq!(snap.global, oracle.global);
        assert_eq!(snap.eta_hat, oracle.eta_hat);
        assert_eq!(snap.locals, oracle.locals);
        resumed.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_resume_is_refused() {
        let path = temp_ckpt("core-mismatch");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig::new(base_cfg()).with_checkpoint(path.clone(), None);
        ServeCore::start(cfg).expect("start").shutdown();
        assert!(path.exists(), "shutdown wrote the final checkpoint");

        let other = ServeConfig::new(ReptConfig::new(4, 4).with_seed(9))
            .with_checkpoint(path.clone(), None);
        assert!(matches!(
            ServeCore::start(other).err(),
            Some(SnapshotError::Invalid("checkpoint/config mismatch"))
        ));
        let other_engine = ServeConfig::new(base_cfg())
            .with_engine(Engine::PerWorker)
            .with_checkpoint(path.clone(), None);
        assert!(matches!(
            ServeCore::start(other_engine).err(),
            Some(SnapshotError::Invalid("checkpoint/engine mismatch"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_without_path_reports_error() {
        let core = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        assert!(core.checkpoint().is_err());
        core.shutdown();
    }

    #[test]
    fn periodic_checkpoints_fire() {
        let stream = stream();
        let path = temp_ckpt("core-periodic");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(path.clone(), Some(100))
            .with_snapshot_every(50);
        let core = ServeCore::start(cfg).expect("start");
        core.ingest(stream[..250].to_vec());
        core.flush();
        assert!(path.exists(), "≥ 100 edges ingested ⇒ checkpoint on disk");
        let on_disk = ResumableRun::from_checkpoint_file(&path).expect("readable");
        assert!(on_disk.position() >= 100);
        assert!(
            core.snapshot().checkpoints >= 1,
            "snapshot surfaces the checkpoint count"
        );
        core.shutdown();
        std::fs::remove_file(&path).ok();
    }
}
