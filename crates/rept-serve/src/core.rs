//! The serving core: one ingest thread driving an engine-aware
//! [`ResumableRun`], snapshot publication, and crash-safe checkpoints.
//!
//! [`ServeCore`] is the transport-free heart of the subsystem — the TCP
//! front-end ([`crate::server`]), the multi-tenant router
//! ([`crate::tenant::TenantRouter`], which owns one `ServeCore` per
//! tenant), the benches and the tests all drive this same type. Producers push edge batches into a **bounded**
//! channel (backpressure, like the cluster simulation's network links);
//! the single ingest thread applies them in arrival order, which keeps
//! the estimator state — and therefore every checkpoint — a pure
//! function of the edge sequence, the config and the engine. Queries
//! read the last published [`Snapshot`] and never touch the ingest
//! thread at all.
//!
//! ## Crash safety
//!
//! With a checkpoint path configured, the core checkpoints the complete
//! estimator state (RPCK v4, write-then-rename) every
//! `checkpoint_every` edges, on demand, and at shutdown; with
//! [`ServeConfig::checkpoint_keep`] `> 1` the previous checkpoints are
//! rotated to position-stamped siblings and pruned to the last `k`. On
//! startup, an existing checkpoint is loaded and the run resumes from
//! its recorded position; the producer replays the stream from
//! [`ServeCore::position`]. Because the driver is deterministic and
//! batch-split-insensitive, a kill-and-restart cycle is bit-identical
//! to an uninterrupted run — the serve proptests assert this for every
//! engine.
//!
//! ## Lossless ingest (write-ahead journal)
//!
//! Checkpoints alone make resume deterministic but lossy: a kill
//! forfeits every edge accepted after the last checkpoint. With
//! [`ServeConfig::with_journal`] the ingest thread appends each
//! accepted batch to a segmented, CRC-guarded journal
//! ([`crate::journal`]) *before* applying it and — under the default
//! [`SyncPolicy::PerRecord`] — fsyncs before the ack, so an acked edge
//! is durable. A checkpoint truncates the journal prefix it covers;
//! startup replays the journal tail above the restored checkpoint.
//! Recovery then yields exactly the acked prefix with no producer-side
//! replay, and a torn final record is dropped, not fatal. Rejected
//! ingest lines land in a dead-letter file ([`crate::dlq`]).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rept_core::reservoir::MIN_MEMORY_BUDGET;
use rept_core::resume::{ResumableRun, SnapshotError};
use rept_core::{Engine, GroupAggregate, GroupSlice, Rept, ReptConfig, ReptEstimate};
use rept_graph::edge::Edge;

use crate::dlq::DeadLetterQueue;
use crate::journal::{Journal, SyncPolicy};
use crate::metrics::ServeMetrics;
use crate::snapshot::{DurabilityStats, Published, Snapshot};

/// Slow-op trace ring capacity per tenant (events, not bytes).
const TRACE_CAPACITY: usize = 256;

/// What happens to ingest once a tenant with a
/// [`ServeConfig::memory_budget`] reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuotaPolicy {
    /// Run the bounded-memory reservoir engine: stored bytes *never*
    /// exceed the budget because old edges are evicted (TRIÈST-style
    /// unbiased sampling) — ingest is never refused, estimates become
    /// approximate once the stream outgrows the budget. The default:
    /// `memory_budget=<bytes>` alone gives graceful degradation.
    #[default]
    Shed,
    /// Keep the exact engine; once stored bytes reach the budget every
    /// further batch is refused with a typed quota error (`ERR QUOTA`
    /// on the wire, routed to the dead-letter file). The tenant keeps
    /// serving reads and accepts writes again if its footprint shrinks
    /// (it does not — adjacency only grows — so in practice this is a
    /// hard stop the operator resolves by dropping or re-budgeting).
    Reject,
    /// Like [`Self::Reject`], but the first breach permanently degrades
    /// the tenant: writes are refused from then on and reads serve the
    /// frozen snapshot, even if a restart would measure fewer bytes.
    /// The flag survives as long as the core runs (it is not
    /// checkpointed — a restart re-arms enforcement from measurement).
    Degrade,
}

impl QuotaPolicy {
    /// Stable lowercase name (wire options, manifests, docs).
    pub fn name(self) -> &'static str {
        match self {
            QuotaPolicy::Shed => "shed",
            QuotaPolicy::Reject => "reject",
            QuotaPolicy::Degrade => "degrade",
        }
    }

    /// Parses [`Self::name`] output.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "shed" => Some(QuotaPolicy::Shed),
            "reject" => Some(QuotaPolicy::Reject),
            "degrade" => Some(QuotaPolicy::Degrade),
            _ => None,
        }
    }
}

/// Why an ingest batch was not accepted. The distinction matters to
/// clients: [`Self::Busy`] is transient (the bounded channel was full —
/// back off and retry), while [`Self::Quota`] is not (retrying without
/// operator action will fail again, and clients must *not* retry it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The bounded ingest channel was full ([`ServeCore::try_ingest`]
    /// only — the blocking [`ServeCore::ingest`] waits instead).
    Busy,
    /// The tenant's memory budget refused the batch
    /// ([`QuotaPolicy::Reject`] / [`QuotaPolicy::Degrade`]).
    Quota(String),
    /// The batch was refused for another reason (journal write failure).
    Rejected(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The leading token doubles as the wire discriminator: the
        // server prefixes `ERR `, so clients see `ERR BUSY …` (retry)
        // vs `ERR QUOTA …` (do not retry).
        match self {
            IngestError::Busy => write!(f, "BUSY ingest queue full; retry"),
            IngestError::Quota(msg) => write!(f, "QUOTA {msg}"),
            IngestError::Rejected(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Per-tenant pressure readings — the `HEALTH` payload. Assembled by
/// [`ServeCore::health`] from live gauges, not from the (possibly
/// stale) published snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// The tenant refuses writes permanently ([`QuotaPolicy::Degrade`]
    /// after its first breach).
    pub degraded: bool,
    /// Ingest batches currently queued (bounded by `queue_capacity`).
    pub queue_depth: u64,
    /// The bounded channel's capacity in batches.
    pub queue_capacity: u64,
    /// Bytes the estimator currently stores for edges (adjacency +
    /// reservoir bookkeeping; counters excluded — see
    /// [`rept_core::engine::EngineCore::stored_bytes`]).
    pub stored_bytes: u64,
    /// The configured budget those bytes are measured against
    /// (0 = unlimited).
    pub memory_budget: u64,
    /// Journal bytes on disk not yet retired by a checkpoint — how far
    /// recovery would have to replay (0 without a journal).
    pub journal_lag_bytes: u64,
    /// Rejected lines captured in the dead-letter file.
    pub dlq: u64,
    /// Active journal fsync policy ([`SyncPolicy::name`]), or `"none"`
    /// when the journal is off — operators confirm the durability mode
    /// from `HEALTH` without reading the manifest.
    pub sync: &'static str,
    /// Size, in batches, of the most recent group commit (0 before the
    /// first ingest).
    pub last_group: u64,
}

/// Live pressure gauges shared between the ingest thread (writer) and
/// [`ServeCore::health`] (reader). All loads/stores are relaxed — each
/// gauge is an independent monotone-ish reading, not a consistent cut.
#[derive(Debug, Default)]
struct Gauges {
    queue_depth: AtomicU64,
    stored_bytes: AtomicU64,
    journal_bytes: AtomicU64,
    journal_segments: AtomicU64,
    degraded: AtomicBool,
}

/// Point-in-time durability readings backed by the same live gauges as
/// [`ServeCore::health`] — what `STATS` / `JOURNAL STATS` report for the
/// fields that move between snapshot publications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveStats {
    /// Bytes the estimator currently stores for edges.
    pub stored_bytes: u64,
    /// Journal bytes on disk not yet retired by a checkpoint.
    pub journal_bytes: u64,
    /// Journal segment files currently on disk.
    pub journal_segments: u64,
    /// Rejected ingest lines captured in the dead-letter file.
    pub dlq: u64,
}

/// Configuration of a [`ServeCore`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The estimator configuration. Enable η tracking
    /// ([`ReptConfig::with_eta`]) if global queries should always carry
    /// a confidence interval.
    pub rept: ReptConfig,
    /// Execution engine (default: [`Engine::FusedSorted`]).
    pub engine: Engine,
    /// Edges between automatic snapshot publications. Snapshot assembly
    /// clones the counter state, so this trades query freshness against
    /// ingest throughput.
    pub snapshot_every: u64,
    /// Edges between automatic checkpoints (`None` = only on demand and
    /// at shutdown). Ignored without a checkpoint path.
    pub checkpoint_every: Option<u64>,
    /// Checkpoint file; also the resume source at startup.
    pub checkpoint_path: Option<PathBuf>,
    /// How many checkpoint files to retain (≥ 1). The newest checkpoint
    /// always lives at [`Self::checkpoint_path`]; with `keep > 1`, each
    /// write first preserves the previous file as a position-stamped
    /// sibling (`<stem>.<position>.rpck`, hard link or copy — the
    /// primary is never moved away, so a failed write cannot lose the
    /// last good checkpoint) and a successful write then prunes rotated
    /// files beyond `keep - 1` — so a checkpoint that turns out
    /// corrupted (e.g. a bad disk) still leaves older restore points on
    /// disk.
    pub checkpoint_keep: usize,
    /// Size of the top-k local-count index kept in each snapshot.
    pub top_k: usize,
    /// Ingest channel capacity in batches (bounded ⇒ producers feel
    /// backpressure instead of growing an unbounded queue).
    pub channel_capacity: usize,
    /// Journal every acked batch to a write-ahead log next to the
    /// checkpoint before applying it (requires [`Self::checkpoint_path`])
    /// so recovery is lossless — see [`crate::journal`]. Default off.
    pub journal: bool,
    /// Journal segment rotation threshold in bytes (default 1 MiB).
    pub journal_segment_bytes: u64,
    /// When the journal fsyncs relative to the ingest ack (default
    /// [`SyncPolicy::PerRecord`] — acked ⇒ durable).
    pub journal_sync: SyncPolicy,
    /// Hard ceiling on the bytes the estimator may store for edges
    /// (`None` = unlimited). Must be at least
    /// [`rept_core::reservoir::MIN_MEMORY_BUDGET`]. What happens at the
    /// ceiling is decided by [`Self::quota`].
    pub memory_budget: Option<u64>,
    /// Enforcement mode for [`Self::memory_budget`] (default
    /// [`QuotaPolicy::Shed`] — the bounded-memory reservoir engine).
    /// Ignored without a budget.
    pub quota: QuotaPolicy,
    /// Record timing histograms and slow-op traces on the hot paths
    /// (default on). Counters and gauges stay live either way — they
    /// back `HEALTH`/`STATS`; turning this off only removes the
    /// clock reads and histogram updates (the bench's uninstrumented
    /// baseline).
    pub metrics: bool,
    /// Operations at or above this duration land in the slow-op trace
    /// ring drained by `TRACE TAIL` (default 50 ms).
    pub slow_op_threshold: Duration,
    /// Run only this round-robin slice of the configuration's hash
    /// groups (`None` = all of them) — the shard-server mode the
    /// `rept-shard` coordinator deploys. A sliced core ingests the full
    /// stream but maintains counters only for its kept groups; its
    /// `AGGREGATE` reply carries those groups' raw counters for the
    /// coordinator to recombine. Incompatible with a reservoir budget
    /// ([`QuotaPolicy::Shed`] + [`Self::memory_budget`]): the reservoir
    /// has no group structure to slice.
    pub group_slice: Option<GroupSlice>,
}

impl ServeConfig {
    /// Defaults: fused-sorted engine, snapshot every 8192 edges, top-100
    /// index, 16-batch channel, no checkpointing, keep 1 checkpoint, no
    /// journal.
    pub fn new(rept: ReptConfig) -> Self {
        Self {
            rept,
            engine: Engine::default(),
            snapshot_every: 8192,
            checkpoint_every: None,
            checkpoint_path: None,
            checkpoint_keep: 1,
            top_k: 100,
            channel_capacity: 16,
            journal: false,
            journal_segment_bytes: 1 << 20,
            journal_sync: SyncPolicy::PerRecord,
            memory_budget: None,
            quota: QuotaPolicy::default(),
            metrics: true,
            slow_op_threshold: Duration::from_millis(50),
            group_slice: None,
        }
    }

    /// Restricts the core to one round-robin group slice (see
    /// [`Self::group_slice`]). A full slice is normalised to `None`.
    pub fn with_group_slice(mut self, slice: GroupSlice) -> Self {
        self.group_slice = (!slice.is_full()).then_some(slice);
        self
    }

    /// Enables or disables timing instrumentation (see [`Self::metrics`]).
    pub fn with_metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Sets the slow-op trace threshold (see [`Self::slow_op_threshold`]).
    pub fn with_slow_op_threshold(mut self, threshold: Duration) -> Self {
        self.slow_op_threshold = threshold;
        self
    }

    /// Bounds the tenant's stored-edge bytes (see
    /// [`Self::memory_budget`] and [`Self::quota`]).
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Selects what happens when the memory budget is reached.
    pub fn with_quota_policy(mut self, quota: QuotaPolicy) -> Self {
        self.quota = quota;
        self
    }

    /// The reservoir budget when this config runs the bounded-memory
    /// engine: a budget under [`QuotaPolicy::Shed`].
    fn reservoir_budget(&self) -> Option<u64> {
        match self.quota {
            QuotaPolicy::Shed => self.memory_budget,
            _ => None,
        }
    }

    /// Whether the ingest thread can refuse batches over quota — in
    /// which case every ingest needs an ack channel to carry the
    /// refusal back, journal or not.
    fn enforces_quota(&self) -> bool {
        self.memory_budget.is_some() && self.quota != QuotaPolicy::Shed
    }

    /// Selects the execution engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the snapshot publication interval (edges).
    pub fn with_snapshot_every(mut self, edges: u64) -> Self {
        self.snapshot_every = edges.max(1);
        self
    }

    /// Enables checkpointing to `path`, with an optional automatic
    /// interval in edges.
    pub fn with_checkpoint(mut self, path: PathBuf, every: Option<u64>) -> Self {
        self.checkpoint_path = Some(path);
        self.checkpoint_every = every;
        self
    }

    /// Sets how many checkpoint files to retain (clamped to ≥ 1; see
    /// [`Self::checkpoint_keep`]).
    pub fn with_checkpoint_keep(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep.max(1);
        self
    }

    /// Sets the top-k index size.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Enables the write-ahead journal (requires a checkpoint path at
    /// [`ServeCore::start`]): acked batches become durable before the
    /// ack and recovery replays the journal tail losslessly.
    pub fn with_journal(mut self) -> Self {
        self.journal = true;
        self
    }

    /// Enables the journal and selects its fsync policy.
    pub fn with_journal_sync(mut self, sync: SyncPolicy) -> Self {
        self.journal = true;
        self.journal_sync = sync;
        self
    }

    /// Sets the journal segment rotation threshold in bytes (clamped to
    /// ≥ 64 so rotation always makes progress).
    pub fn with_journal_segment_bytes(mut self, bytes: u64) -> Self {
        self.journal_segment_bytes = bytes.max(64);
        self
    }
}

/// Ack channel carried by an [`Control::Ingest`] message, when the
/// producer waits for an admission/durability verdict.
type IngestAck = Option<SyncSender<Result<(), IngestError>>>;

/// Control messages the ingest thread consumes, in arrival order.
enum Control {
    /// Apply a batch of stream edges. The sender, when present, is
    /// acked once the batch is admitted and journaled (and, per policy,
    /// fsynced) — `Err` means the batch was refused and not applied.
    /// The `Instant` is the enqueue time, for the queue-wait histogram.
    Ingest(Vec<Edge>, IngestAck, Instant),
    /// Publish a fresh snapshot, then reply with the position — a
    /// barrier: everything queued before it is applied first.
    Flush(SyncSender<u64>),
    /// Write a checkpoint (and publish), then reply with the position.
    Checkpoint(SyncSender<Result<u64, String>>),
    /// Barrier like [`Self::Flush`], then reply with the position and
    /// the run's raw per-group counters — the shard tier's
    /// aggregate-exchange payload. `Err` for reservoir runs, which have
    /// no group structure.
    Aggregate(AggregateReply),
    /// Drain and exit the ingest loop.
    Shutdown,
}

/// Reply channel of [`Control::Aggregate`].
type AggregateReply = SyncSender<Result<(u64, Vec<GroupAggregate>), String>>;

/// The running serving core. Dropping it (or calling
/// [`Self::shutdown`]) stops the ingest thread, writing a final
/// checkpoint when a path is configured.
#[derive(Debug)]
pub struct ServeCore {
    tx: SyncSender<Control>,
    published: Arc<Published<Snapshot>>,
    ingest: Option<JoinHandle<ResumableRun>>,
    cfg: ServeConfig,
    /// See [`Self::disable_checkpoints`].
    ckpt_disabled: Arc<AtomicBool>,
    /// Dead-letter capture for rejected ingest lines (journal mode).
    dlq: Option<Arc<DeadLetterQueue>>,
    /// Live pressure gauges backing [`Self::health`].
    gauges: Arc<Gauges>,
    /// Per-tenant counters/histograms/trace — the `METRICS` payload.
    metrics: Arc<ServeMetrics>,
}

impl ServeCore {
    /// Starts the core: resumes from the configured checkpoint if one
    /// exists on disk, otherwise starts a fresh run; then spawns the
    /// ingest thread and publishes the initial snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when an existing checkpoint cannot be decoded
    /// or disagrees with the requested config/engine — resuming under a
    /// different configuration would silently produce garbage, so it is
    /// refused. Also when the journal is enabled without a checkpoint
    /// path, or the journal on disk has a gap above the checkpoint
    /// (acked edges are missing — starting would silently lose them).
    pub fn start(cfg: ServeConfig) -> Result<Self, SnapshotError> {
        if cfg.journal && cfg.checkpoint_path.is_none() {
            return Err(SnapshotError::Invalid("journal requires a checkpoint path"));
        }
        if cfg.memory_budget.is_some_and(|b| b < MIN_MEMORY_BUDGET) {
            return Err(SnapshotError::Invalid(
                "memory budget below the reservoir minimum",
            ));
        }
        let slice = cfg.group_slice.unwrap_or(GroupSlice::FULL);
        if !slice.is_full() {
            if cfg.reservoir_budget().is_some() {
                return Err(SnapshotError::Invalid(
                    "group slice is incompatible with a reservoir budget",
                ));
            }
            if u64::from(slice.index()) >= cfg.rept.group_count() {
                return Err(SnapshotError::Invalid("group slice keeps no groups"));
            }
        }
        let mut run = match &cfg.checkpoint_path {
            Some(path) if path.exists() => {
                let run = ResumableRun::from_checkpoint_file(path)?;
                if run.config() != &cfg.rept {
                    return Err(SnapshotError::Invalid("checkpoint/config mismatch"));
                }
                // Reservoir checkpoints carry their budget instead of a
                // meaningful engine; an engine checkpoint carries no
                // budget. Either direction of disagreement would resume
                // under different semantics, so it is refused.
                match (run.memory_budget(), cfg.reservoir_budget()) {
                    (Some(have), Some(want)) if have == want => {}
                    (Some(_), Some(_)) | (Some(_), None) | (None, Some(_)) => {
                        return Err(SnapshotError::Invalid("checkpoint/budget mismatch"));
                    }
                    (None, None) => {
                        if run.engine() != cfg.engine {
                            return Err(SnapshotError::Invalid("checkpoint/engine mismatch"));
                        }
                    }
                }
                // A sliced core resuming a differently-sliced blob (or a
                // full blob, or vice versa) would silently count the
                // wrong groups — refused like any other config drift.
                if run.group_slice() != slice {
                    return Err(SnapshotError::Invalid("checkpoint/slice mismatch"));
                }
                run
            }
            _ => match cfg.reservoir_budget() {
                Some(budget) => ResumableRun::with_reservoir(cfg.rept, budget),
                None if slice.is_full() => {
                    ResumableRun::with_engine(Rept::new(cfg.rept), cfg.engine)
                }
                None => ResumableRun::with_sliced_engine(Rept::new(cfg.rept), cfg.engine, slice),
            },
        };

        // Journal recovery: replay the durable tail above the restored
        // checkpoint, making the resume lossless instead of relying on
        // producer-side replay.
        let mut journal = None;
        let mut dlq = None;
        let mut replayed = 0u64;
        if cfg.journal {
            let path = cfg.checkpoint_path.as_ref().expect("checked above");
            let recovery = Journal::recover(
                path,
                cfg.journal_segment_bytes,
                cfg.journal_sync,
                run.position(),
            )
            .map_err(|e| SnapshotError::Io(format!("journal recovery: {e}")))?;
            if !recovery.replay.is_empty() {
                run.process_batch(&recovery.replay);
                replayed = recovery.replay.len() as u64;
            }
            journal = Some(recovery.journal);
            dlq = Some(Arc::new(
                DeadLetterQueue::open(DeadLetterQueue::path_for(path))
                    .map_err(|e| SnapshotError::Io(format!("dead-letter open: {e}")))?,
            ));
        }

        let mut initial = Snapshot::from_estimate(
            &run.estimate(),
            &cfg.rept,
            cfg.engine,
            run.position(),
            0,
            0,
            cfg.top_k,
        );
        initial.durability = durability_stats(journal.as_ref(), cfg.journal, replayed);
        if run.memory_budget().is_some() {
            // Reservoir estimates are TRIÈST-unbiased, not REPT
            // partition estimates: the plug-in variance formula does
            // not apply, so no interval is advertised.
            initial.confidence95 = None;
        }
        let published = Arc::new(Published::new(initial));
        let (tx, rx) = sync_channel::<Control>(cfg.channel_capacity.max(1));

        let gauges = Arc::new(Gauges::default());
        gauges
            .stored_bytes
            .store(run.stored_bytes() as u64, Ordering::Relaxed);
        gauges.journal_bytes.store(
            journal.as_ref().map_or(0, Journal::bytes),
            Ordering::Relaxed,
        );
        gauges.journal_segments.store(
            journal.as_ref().map_or(0, Journal::segments),
            Ordering::Relaxed,
        );
        let metrics = Arc::new(ServeMetrics::new(TRACE_CAPACITY, cfg.slow_op_threshold));
        if cfg.metrics {
            if let Some(j) = journal.as_mut() {
                j.instrument(Arc::clone(&metrics));
            }
        }
        let ckpt_disabled = Arc::new(AtomicBool::new(false));
        let thread_published = Arc::clone(&published);
        let thread_cfg = cfg.clone();
        let thread_disabled = Arc::clone(&ckpt_disabled);
        let thread_gauges = Arc::clone(&gauges);
        let thread_metrics = Arc::clone(&metrics);
        let ingest = std::thread::Builder::new()
            .name("rept-serve-ingest".into())
            .spawn(move || {
                ingest_loop(
                    run,
                    journal,
                    replayed,
                    rx,
                    thread_published,
                    thread_cfg,
                    thread_disabled,
                    thread_gauges,
                    thread_metrics,
                )
            })
            .expect("spawn ingest thread");

        Ok(Self {
            tx,
            published,
            ingest: Some(ingest),
            cfg,
            ckpt_disabled,
            dlq,
            gauges,
            metrics,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Permanently disables checkpoint writes (periodic, on-demand and
    /// the final one at shutdown). The tenant router sets this when a
    /// tenant is dropped: its checkpoint directory is deleted, and a
    /// late final checkpoint from a still-draining core must not land
    /// in a *recreated* directory of the same name (a subsequent
    /// `TENANT CREATE`), where the stale-config blob would poison the
    /// next restart.
    pub(crate) fn disable_checkpoints(&self) {
        self.ckpt_disabled
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Whether this ingest path needs an ack channel: the journal must
    /// report write failures, and quota enforcement must report
    /// refusals — both travel back through the ack.
    fn needs_ack(&self) -> bool {
        self.cfg.journal || self.cfg.enforces_quota()
    }

    /// Queues a batch of edges for ingestion. Blocks when the bounded
    /// channel is full (backpressure) — use [`Self::try_ingest`] to
    /// turn a full queue into [`IngestError::Busy`] instead. With the
    /// journal enabled it also blocks until the batch is journaled —
    /// and, under the default [`SyncPolicy::PerRecord`], fsynced — so
    /// `Ok` means the edges survive a kill. Without the journal, `Ok`
    /// only means queued (or, with a quota, queued *and* admitted).
    ///
    /// # Errors
    ///
    /// [`IngestError::Quota`] when the memory budget refused the batch,
    /// [`IngestError::Rejected`] when the journal write failed; either
    /// way the batch was not applied. Never [`IngestError::Busy`].
    pub fn ingest(&self, edges: Vec<Edge>) -> Result<(), IngestError> {
        if edges.is_empty() {
            return Ok(());
        }
        if !self.needs_ack() {
            self.tx
                .send(Control::Ingest(edges, None, Instant::now()))
                .expect("ingest thread alive");
            self.gauges.queue_depth.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let (ack_tx, ack_rx) = sync_channel(1);
        self.tx
            .send(Control::Ingest(edges, Some(ack_tx), Instant::now()))
            .expect("ingest thread alive");
        self.gauges.queue_depth.fetch_add(1, Ordering::Relaxed);
        ack_rx.recv().expect("ingest thread acks")
    }

    /// Like [`Self::ingest`], but a full channel returns
    /// [`IngestError::Busy`] immediately instead of blocking — the
    /// server's backpressure path (`ERR BUSY` tells the client to back
    /// off and retry, in contrast to `ERR QUOTA` which it must not).
    ///
    /// # Errors
    ///
    /// [`IngestError::Busy`] (queue full), plus everything
    /// [`Self::ingest`] can return.
    pub fn try_ingest(&self, edges: Vec<Edge>) -> Result<(), IngestError> {
        if edges.is_empty() {
            return Ok(());
        }
        if !self.needs_ack() {
            return match self
                .tx
                .try_send(Control::Ingest(edges, None, Instant::now()))
            {
                Ok(()) => {
                    self.gauges.queue_depth.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(TrySendError::Full(_)) => {
                    self.metrics.busy_rejections.inc();
                    Err(IngestError::Busy)
                }
                Err(TrySendError::Disconnected(_)) => panic!("ingest thread alive"),
            };
        }
        let (ack_tx, ack_rx) = sync_channel(1);
        match self
            .tx
            .try_send(Control::Ingest(edges, Some(ack_tx), Instant::now()))
        {
            Ok(()) => {
                self.gauges.queue_depth.fetch_add(1, Ordering::Relaxed);
                ack_rx.recv().expect("ingest thread acks")
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.busy_rejections.inc();
                Err(IngestError::Busy)
            }
            Err(TrySendError::Disconnected(_)) => panic!("ingest thread alive"),
        }
    }

    /// Live pressure readings — the `HEALTH` payload. Gauge-backed, so
    /// it reflects the ingest thread's current state rather than the
    /// last published snapshot.
    pub fn health(&self) -> Health {
        Health {
            degraded: self.gauges.degraded.load(Ordering::Relaxed),
            queue_depth: self.gauges.queue_depth.load(Ordering::Relaxed),
            queue_capacity: self.cfg.channel_capacity.max(1) as u64,
            stored_bytes: self.gauges.stored_bytes.load(Ordering::Relaxed),
            memory_budget: self.cfg.memory_budget.unwrap_or(0),
            journal_lag_bytes: self.gauges.journal_bytes.load(Ordering::Relaxed),
            dlq: self.dlq_count(),
            sync: if self.cfg.journal {
                self.cfg.journal_sync.name()
            } else {
                "none"
            },
            last_group: self.metrics.last_group_commit.get(),
        }
    }

    /// Live durability readings for `STATS` / `JOURNAL STATS` — backed
    /// by the same gauges as [`Self::health`], so an idle tenant reports
    /// current journal/DLQ state instead of the last snapshot's.
    pub fn live_stats(&self) -> LiveStats {
        LiveStats {
            stored_bytes: self.gauges.stored_bytes.load(Ordering::Relaxed),
            journal_bytes: self.gauges.journal_bytes.load(Ordering::Relaxed),
            journal_segments: self.gauges.journal_segments.load(Ordering::Relaxed),
            dlq: self.dlq_count(),
        }
    }

    /// The tenant's metric set (counters, histograms, slow-op trace).
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Drains the dead-letter file for replay: returns every captured
    /// `(reason, original line)` pair and truncates the file, so lines
    /// that fail again can be re-captured without duplication. Empty
    /// without a journal (the DLQ lives next to the checkpoint).
    pub fn dlq_drain(&self) -> Vec<(String, String)> {
        self.dlq.as_ref().map_or_else(Vec::new, |d| d.drain())
    }

    /// Captures a rejected ingest line in the dead-letter file (no-op
    /// without a journal — the DLQ lives next to the checkpoint).
    pub fn dead_letter(&self, line: &str, reason: &str) {
        if let Some(dlq) = &self.dlq {
            dlq.record(line, reason);
            self.metrics.dead_letters.inc();
        }
    }

    /// Rejected ingest lines captured in the dead-letter file so far
    /// (carried across restarts; 0 without a journal).
    pub fn dlq_count(&self) -> u64 {
        self.dlq.as_ref().map_or(0, |d| d.count())
    }

    /// The latest published snapshot — the query path. Lock-free apart
    /// from one pointer clone; never blocks ingestion.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published.load()
    }

    /// Barrier: waits until everything queued so far is applied and a
    /// fresh snapshot is published; returns the stream position.
    pub fn flush(&self) -> u64 {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send(Control::Flush(reply_tx))
            .expect("ingest thread alive");
        reply_rx.recv().expect("ingest thread replies")
    }

    /// Writes a checkpoint now (after draining everything queued so
    /// far); returns the checkpointed position.
    ///
    /// # Errors
    ///
    /// A description when no checkpoint path is configured or the write
    /// fails.
    pub fn checkpoint(&self) -> Result<u64, String> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send(Control::Checkpoint(reply_tx))
            .expect("ingest thread alive");
        reply_rx.recv().expect("ingest thread replies")
    }

    /// Barrier: waits until everything queued so far is applied, then
    /// returns the stream position and the run's raw per-group counters
    /// ([`GroupAggregate`]) — for a full core all of them, for a sliced
    /// core exactly the kept groups. This is the shard tier's exchange
    /// payload: a coordinator collects every shard's reply and
    /// recombines through [`Rept::finalize_groups`] into the
    /// bit-identical single-process estimate (all counters are
    /// integers, so the wire loses nothing).
    ///
    /// # Errors
    ///
    /// A description for reservoir (memory-budget) runs, whose samples
    /// have no group structure to exchange.
    pub fn aggregates(&self) -> Result<(u64, Vec<GroupAggregate>), String> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send(Control::Aggregate(reply_tx))
            .expect("ingest thread alive");
        reply_rx.recv().expect("ingest thread replies")
    }

    /// The group slice this core maintains ([`GroupSlice::FULL`] unless
    /// configured as a shard server).
    pub fn group_slice(&self) -> GroupSlice {
        self.cfg.group_slice.unwrap_or(GroupSlice::FULL)
    }

    /// The position of the last published snapshot. After
    /// [`Self::flush`] this is the exact number of edges applied —
    /// the replay point a restarted producer resumes from.
    pub fn position(&self) -> u64 {
        self.snapshot().position
    }

    /// Stops the ingest thread (draining queued work, writing the final
    /// checkpoint when configured) and returns the final estimate.
    pub fn shutdown(mut self) -> ReptEstimate {
        self.tx
            .send(Control::Shutdown)
            .expect("ingest thread alive");
        let run = self
            .ingest
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("ingest thread panicked");
        run.finalize()
    }
}

impl Drop for ServeCore {
    fn drop(&mut self) {
        if let Some(handle) = self.ingest.take() {
            // Best effort: the thread may already be gone.
            let _ = self.tx.send(Control::Shutdown);
            let _ = handle.join();
        }
    }
}

/// The rotated sibling of a checkpoint path at a given stream position:
/// `<stem>.<position zero-padded>.rpck`, in the same directory. The
/// zero padding makes lexicographic name order equal numeric position
/// order, which is what [`prune_rotated`] sorts by.
fn rotated_checkpoint_path(path: &Path, position: u64) -> PathBuf {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    path.with_file_name(format!("{stem}.{position:020}.rpck"))
}

/// Removes the oldest rotated checkpoints of `path` until at most
/// `keep_rotated` remain. Best-effort: filesystem errors leave extra
/// files behind rather than disturbing ingest.
fn prune_rotated(path: &Path, keep_rotated: usize) {
    let (Some(dir), Some(stem)) = (path.parent(), path.file_stem()) else {
        return;
    };
    let prefix = format!("{}.", stem.to_string_lossy());
    let Ok(entries) = std::fs::read_dir(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    }) else {
        return;
    };
    let mut rotated: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
                return false;
            };
            name.strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(".rpck"))
                .is_some_and(|mid| !mid.is_empty() && mid.bytes().all(|b| b.is_ascii_digit()))
        })
        .collect();
    if rotated.len() <= keep_rotated {
        return;
    }
    rotated.sort();
    let excess = rotated.len() - keep_rotated;
    for old in &rotated[..excess] {
        let _ = std::fs::remove_file(old);
    }
}

/// Assembles the durability block published with every snapshot.
fn durability_stats(journal: Option<&Journal>, enabled: bool, replayed: u64) -> DurabilityStats {
    DurabilityStats {
        enabled,
        journal_bytes: journal.map_or(0, |j| j.bytes()),
        journal_segments: journal.map_or(0, |j| j.segments()),
        replayed,
    }
}

/// The ingest thread body.
#[allow(clippy::too_many_arguments)]
fn ingest_loop(
    mut run: ResumableRun,
    mut journal: Option<Journal>,
    replayed: u64,
    rx: std::sync::mpsc::Receiver<Control>,
    published: Arc<Published<Snapshot>>,
    cfg: ServeConfig,
    ckpt_disabled: Arc<AtomicBool>,
    gauges: Arc<Gauges>,
    metrics: Arc<ServeMetrics>,
) -> ResumableRun {
    // Gates clock reads and histogram/trace recording (counters and the
    // health gauges stay live regardless — see `ServeConfig::metrics`).
    let timed = cfg.metrics;
    let mut seq = 0u64;
    let mut checkpoints = 0u64;
    let mut since_snapshot = 0u64;
    let mut since_checkpoint = 0u64;
    // `start` already published the initial snapshot for this state.
    let mut last_published: Option<(u64, u64)> = Some((run.position(), checkpoints));
    // Position of the checkpoint currently at `checkpoint_path`, for
    // rotation. A file found at startup holds the resumed position.
    let mut last_ckpt_pos: Option<u64> = cfg
        .checkpoint_path
        .as_ref()
        .filter(|p| p.exists())
        .map(|_| run.position());

    let publish = |run: &ResumableRun,
                   seq: &mut u64,
                   last: &mut Option<(u64, u64)>,
                   checkpoints: u64,
                   durability: DurabilityStats| {
        // Snapshot assembly clones the per-node counter maps; when
        // nothing changed since the last publication, the published
        // `Arc` body is already exact — keep it (seq-guarded reuse).
        // Durability state only moves with the position (appends) or
        // the checkpoint count (truncation), so the guard covers it.
        if *last == Some((run.position(), checkpoints)) {
            return;
        }
        let started = timed.then(Instant::now);
        *seq += 1;
        let mut snap = Snapshot::from_estimate(
            &run.estimate(),
            &cfg.rept,
            cfg.engine,
            run.position(),
            *seq,
            checkpoints,
            cfg.top_k,
        );
        snap.durability = durability;
        if run.memory_budget().is_some() {
            // Reservoir estimates are TRIÈST-IMPR global counts, not
            // REPT partition estimates — the closed-form REPT interval
            // does not apply to them.
            snap.confidence95 = None;
        }
        published.store(snap);
        *last = Some((run.position(), checkpoints));
        metrics.snapshots_published.inc();
        if let Some(started) = started {
            let took = started.elapsed();
            metrics.publish_micros.record_duration(took);
            metrics
                .trace
                .record("publish", took, || format!("position={}", run.position()));
        }
    };
    let write_checkpoint = |run: &ResumableRun,
                            last_pos: &mut Option<u64>,
                            journal: &mut Option<Journal>|
     -> Result<u64, String> {
        if ckpt_disabled.load(std::sync::atomic::Ordering::SeqCst) {
            return Err("checkpointing disabled (tenant dropped)".to_string());
        }
        let path = cfg
            .checkpoint_path
            .as_ref()
            .ok_or_else(|| "no checkpoint path configured".to_string())?;
        // Rotation: preserve the previous checkpoint under a
        // position-stamped name via a hard link (copy fallback) —
        // never by moving it away, so a failed write below still
        // leaves the primary checkpoint intact for the next restart.
        // The write-then-rename replaces the primary's directory
        // entry; the rotated name keeps pointing at the old inode.
        // Same-position rewrites produce the identical blob, so
        // rotating them would only duplicate the file.
        if cfg.checkpoint_keep > 1 {
            if let Some(prev) = *last_pos {
                if prev != run.position() && path.exists() {
                    let rotated = rotated_checkpoint_path(path, prev);
                    let _ = std::fs::remove_file(&rotated);
                    if std::fs::hard_link(path, &rotated).is_err() {
                        let _ = std::fs::copy(path, &rotated);
                    }
                }
            }
        }
        let started = timed.then(Instant::now);
        run.checkpoint_to_file(path)
            .map_err(|e| format!("checkpoint write failed: {e}"))?;
        let bytes = std::fs::metadata(path).map_or(0, |m| m.len());
        metrics.checkpoints_written.inc();
        metrics.checkpoint_bytes.add(bytes);
        if let Some(started) = started {
            let took = started.elapsed();
            metrics.checkpoint_micros.record_duration(took);
            metrics.trace.record("checkpoint", took, || {
                format!("position={} bytes={bytes}", run.position())
            });
        }
        *last_pos = Some(run.position());
        // Unconditional: lowering `checkpoint_keep` on a redeploy
        // must also clean up rotated files a higher setting left.
        // Saturating: the field is pub, so a struct-literal config
        // can bypass the builder's ≥ 1 clamp with `keep = 0`.
        prune_rotated(path, cfg.checkpoint_keep.saturating_sub(1));
        // The durable checkpoint covers every applied edge: retire the
        // journal prefix it made redundant. (A kill right here leaves
        // stale segments; recovery skips records below the restored
        // position, so the window is harmless.)
        if let Some(j) = journal.as_mut() {
            j.truncate_to(run.position());
        }
        Ok(run.position())
    };

    // Quota admission: decides whether a batch may enter the run.
    // Reservoir runs never refuse (the reservoir sheds internally and
    // keeps `stored_bytes ≤ budget` by construction), so this only
    // fires for `Reject`/`Degrade` tenants backed by a full engine.
    // The check is a high-water mark — stored bytes are compared
    // *before* admission, so the overshoot is bounded by one batch.
    let admit = |run: &ResumableRun| -> Result<(), String> {
        let Some(budget) = cfg.memory_budget else {
            return Ok(());
        };
        if run.memory_budget().is_some() {
            return Ok(());
        }
        if cfg.quota == QuotaPolicy::Degrade && gauges.degraded.load(Ordering::Relaxed) {
            return Err(format!(
                "tenant degraded: memory budget {budget} B was reached; writes are frozen"
            ));
        }
        let stored = run.stored_bytes() as u64;
        if stored < budget {
            return Ok(());
        }
        match cfg.quota {
            QuotaPolicy::Shed => Ok(()),
            QuotaPolicy::Reject => Err(format!(
                "memory budget reached: stored {stored} B >= budget {budget} B; batch rejected"
            )),
            QuotaPolicy::Degrade => {
                gauges.degraded.store(true, Ordering::Relaxed);
                Err(format!(
                    "memory budget reached: stored {stored} B >= budget {budget} B; \
                     tenant degraded to read-only"
                ))
            }
        }
    };

    // A non-Ingest message drained while assembling a group commit is
    // parked here and handled on the next iteration.
    let mut pending: Option<Control> = None;
    loop {
        let msg = match pending.take() {
            Some(msg) => msg,
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            },
        };
        match msg {
            Control::Ingest(batch, ack, queued_at) => {
                // Group commit: while this batch's fsync would be in
                // flight, later batches may already be queued — fold
                // them into one durability barrier so N concurrent
                // producers share a single fsync instead of paying one
                // each. Only worth it when appends fsync individually.
                let mut group = vec![(batch, ack, queued_at)];
                if journal.is_some() && cfg.journal_sync == SyncPolicy::PerRecord {
                    while group.len() < cfg.channel_capacity.max(1) {
                        match rx.try_recv() {
                            Ok(Control::Ingest(b, a, q)) => group.push((b, a, q)),
                            Ok(other) => {
                                pending = Some(other);
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                }
                let grouped = group.len() > 1;
                metrics.last_group_commit.set(group.len() as u64);
                metrics.group_commit_batches.record(group.len() as u64);
                // Phase 1 — admit and journal each member (deferring
                // the fsync when grouped). `next_pos` tracks the
                // journal position ahead of the deferred applies.
                let mut accepted: Vec<(Vec<Edge>, IngestAck)> = Vec::new();
                let mut next_pos = run.position();
                for (batch, ack, queued_at) in group {
                    gauges.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    if timed {
                        metrics
                            .queue_wait_micros
                            .record_duration(queued_at.elapsed());
                    }
                    if let Err(reason) = admit(&run) {
                        metrics.quota_rejections.inc();
                        match &ack {
                            Some(ack) => drop(ack.send(Err(IngestError::Quota(reason)))),
                            None => eprintln!("rept-serve: QUOTA {reason}; batch dropped"),
                        }
                        continue;
                    }
                    if let Some(j) = journal.as_mut() {
                        // Journal-before-apply: under `PerRecord` the
                        // (non-deferred) append fsyncs, so the ack
                        // below promises durability.
                        let res = if grouped {
                            j.append_deferred(next_pos, &batch)
                        } else {
                            j.append(next_pos, &batch)
                        };
                        if let Err(e) = res {
                            metrics.rejected_batches.inc();
                            let msg = format!("journal append failed: {e}");
                            match &ack {
                                Some(ack) => drop(ack.send(Err(IngestError::Rejected(msg)))),
                                None => eprintln!("rept-serve: {msg}; batch refused"),
                            }
                            continue;
                        }
                    }
                    next_pos += batch.len() as u64;
                    accepted.push((batch, ack));
                }
                // Phase 2 — one barrier fsync covers the whole group.
                // On failure nothing was promised yet: refuse every
                // member and apply none, keeping the acked set equal
                // to the durable set.
                if grouped {
                    if let Some(j) = journal.as_mut() {
                        if let Err(e) = j.sync() {
                            metrics.rejected_batches.add(accepted.len() as u64);
                            let msg = format!("journal sync failed: {e}");
                            for (_, ack) in &accepted {
                                match ack {
                                    Some(ack) => {
                                        drop(ack.send(Err(IngestError::Rejected(msg.clone()))));
                                    }
                                    None => eprintln!("rept-serve: {msg}; batch refused"),
                                }
                            }
                            accepted.clear();
                        }
                    }
                }
                // Phase 3 — ack and apply in arrival order.
                for (batch, ack) in accepted {
                    if let Some(ack) = &ack {
                        let _ = ack.send(Ok(()));
                    }
                    let n = batch.len() as u64;
                    let started = timed.then(Instant::now);
                    run.process_batch(&batch);
                    metrics.ingest_batches.inc();
                    metrics.ingest_edges.add(n);
                    if let Some(started) = started {
                        let took = started.elapsed();
                        metrics.apply_micros.record_duration(took);
                        metrics.trace.record("apply", took, || format!("edges={n}"));
                    }
                    since_snapshot += n;
                    since_checkpoint += n;
                }
                if since_snapshot >= cfg.snapshot_every {
                    publish(
                        &run,
                        &mut seq,
                        &mut last_published,
                        checkpoints,
                        durability_stats(journal.as_ref(), cfg.journal, replayed),
                    );
                    since_snapshot = 0;
                }
                if let Some(every) = cfg.checkpoint_every {
                    if cfg.checkpoint_path.is_some() && since_checkpoint >= every {
                        // Periodic checkpoints are best-effort; an
                        // unwritable path surfaces on the explicit
                        // `Checkpoint` request instead of killing ingest.
                        checkpoints +=
                            write_checkpoint(&run, &mut last_ckpt_pos, &mut journal).is_ok() as u64;
                        since_checkpoint = 0;
                    }
                }
                gauges
                    .stored_bytes
                    .store(run.stored_bytes() as u64, Ordering::Relaxed);
                gauges.journal_bytes.store(
                    journal.as_ref().map_or(0, Journal::bytes),
                    Ordering::Relaxed,
                );
                gauges.journal_segments.store(
                    journal.as_ref().map_or(0, Journal::segments),
                    Ordering::Relaxed,
                );
            }
            Control::Flush(reply) => {
                if let Some(j) = journal.as_mut() {
                    // Flush doubles as a durability barrier under the
                    // batched sync policy.
                    let _ = j.sync();
                }
                gauges.journal_bytes.store(
                    journal.as_ref().map_or(0, Journal::bytes),
                    Ordering::Relaxed,
                );
                gauges.journal_segments.store(
                    journal.as_ref().map_or(0, Journal::segments),
                    Ordering::Relaxed,
                );
                publish(
                    &run,
                    &mut seq,
                    &mut last_published,
                    checkpoints,
                    durability_stats(journal.as_ref(), cfg.journal, replayed),
                );
                since_snapshot = 0;
                let _ = reply.send(run.position());
            }
            Control::Checkpoint(reply) => {
                let result = write_checkpoint(&run, &mut last_ckpt_pos, &mut journal);
                checkpoints += result.is_ok() as u64;
                gauges.journal_bytes.store(
                    journal.as_ref().map_or(0, Journal::bytes),
                    Ordering::Relaxed,
                );
                gauges.journal_segments.store(
                    journal.as_ref().map_or(0, Journal::segments),
                    Ordering::Relaxed,
                );
                publish(
                    &run,
                    &mut seq,
                    &mut last_published,
                    checkpoints,
                    durability_stats(journal.as_ref(), cfg.journal, replayed),
                );
                since_snapshot = 0;
                since_checkpoint = 0;
                let _ = reply.send(result);
            }
            Control::Aggregate(reply) => {
                let result = match run.group_aggregates() {
                    Some(aggregates) => Ok((run.position(), aggregates)),
                    None => Err("reservoir runs have no group aggregates".to_string()),
                };
                let _ = reply.send(result);
            }
            Control::Shutdown => break,
        }
    }
    // Final checkpoint + snapshot so a restart resumes from the exact
    // shutdown position (and the last snapshot reflects the write).
    if cfg.checkpoint_path.is_some() {
        checkpoints += write_checkpoint(&run, &mut last_ckpt_pos, &mut journal).is_ok() as u64;
    }
    if let Some(j) = journal.as_mut() {
        // Normally the final checkpoint truncated everything; when it
        // failed (or checkpointing is disabled), leave the tail durable.
        let _ = j.sync();
    }
    publish(
        &run,
        &mut seq,
        &mut last_published,
        checkpoints,
        durability_stats(journal.as_ref(), cfg.journal, replayed),
    );
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use rept_gen::{barabasi_albert, GeneratorConfig};

    fn stream() -> Vec<Edge> {
        barabasi_albert(&GeneratorConfig::new(400, 5), 4)
    }

    fn base_cfg() -> ReptConfig {
        ReptConfig::new(3, 7).with_seed(9).with_eta(true)
    }

    fn temp_ckpt(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rept-serve-{tag}-{}.rpck", std::process::id()))
    }

    #[test]
    fn ingest_then_flush_matches_batch_run() {
        let stream = stream();
        let oracle = Rept::new(base_cfg()).run_sequential(stream.iter().copied());
        let core = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        for chunk in stream.chunks(97) {
            core.ingest(chunk.to_vec()).expect("ingest");
        }
        let pos = core.flush();
        assert_eq!(pos, stream.len() as u64);
        let snap = core.snapshot();
        assert_eq!(snap.position, pos);
        assert_eq!(snap.global, oracle.global);
        assert_eq!(snap.eta_hat, oracle.eta_hat);
        assert!(snap.confidence95.is_some(), "η tracked ⇒ interval");
        let final_est = core.shutdown();
        assert_eq!(final_est.global, oracle.global);
        assert_eq!(final_est.locals, oracle.locals);
    }

    #[test]
    fn snapshots_are_isolated_from_ingest() {
        let stream = stream();
        let core = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        core.ingest(stream[..200].to_vec()).expect("ingest");
        core.flush();
        let early = core.snapshot();
        core.ingest(stream[200..].to_vec()).expect("ingest");
        core.flush();
        let late = core.snapshot();
        // The early Arc is untouched by later ingestion.
        assert_eq!(early.position, 200);
        assert_eq!(late.position, stream.len() as u64);
        assert!(late.seq > early.seq);
        core.shutdown();
    }

    #[test]
    fn checkpoint_restart_resumes_bit_identically() {
        let stream = stream();
        let oracle = Rept::new(base_cfg()).run_sequential(stream.iter().copied());
        let path = temp_ckpt("core-resume");
        std::fs::remove_file(&path).ok();

        let cfg = ServeConfig::new(base_cfg()).with_checkpoint(path.clone(), None);
        let core = ServeCore::start(cfg.clone()).expect("start");
        let split = stream.len() / 3;
        core.ingest(stream[..split].to_vec()).expect("ingest");
        let pos = core.checkpoint().expect("checkpoint");
        assert_eq!(pos, split as u64);
        drop(core); // simulate a crash after the checkpoint

        let resumed = ServeCore::start(cfg).expect("resume");
        assert_eq!(resumed.position(), split as u64, "replay point");
        resumed.ingest(stream[split..].to_vec()).expect("ingest");
        resumed.flush();
        let snap = resumed.snapshot();
        assert_eq!(snap.global, oracle.global);
        assert_eq!(snap.eta_hat, oracle.eta_hat);
        assert_eq!(snap.locals, oracle.locals);
        resumed.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_resume_is_refused() {
        let path = temp_ckpt("core-mismatch");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig::new(base_cfg()).with_checkpoint(path.clone(), None);
        ServeCore::start(cfg).expect("start").shutdown();
        assert!(path.exists(), "shutdown wrote the final checkpoint");

        let other = ServeConfig::new(ReptConfig::new(4, 4).with_seed(9))
            .with_checkpoint(path.clone(), None);
        assert!(matches!(
            ServeCore::start(other).err(),
            Some(SnapshotError::Invalid("checkpoint/config mismatch"))
        ));
        let other_engine = ServeConfig::new(base_cfg())
            .with_engine(Engine::PerWorker)
            .with_checkpoint(path.clone(), None);
        assert!(matches!(
            ServeCore::start(other_engine).err(),
            Some(SnapshotError::Invalid("checkpoint/engine mismatch"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn idle_flushes_reuse_the_published_snapshot() {
        let stream = stream();
        let core = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        core.ingest(stream[..300].to_vec()).expect("ingest");
        core.flush();
        let first = core.snapshot();
        // No edges since the last publication: the snapshot body must be
        // reused (same Arc), not re-assembled from a counter clone.
        core.flush();
        core.flush();
        let reused = core.snapshot();
        assert!(Arc::ptr_eq(&first, &reused), "idle flush re-clones state");
        assert_eq!(reused.seq, first.seq);
        // New edges end the reuse window.
        core.ingest(stream[300..].to_vec()).expect("ingest");
        core.flush();
        let fresh = core.snapshot();
        assert!(!Arc::ptr_eq(&first, &fresh));
        assert!(fresh.seq > first.seq);
        assert_eq!(fresh.position, stream.len() as u64);
        core.shutdown();
    }

    #[test]
    fn checkpoint_rotation_keeps_the_last_k() {
        let stream = stream();
        let dir = std::env::temp_dir().join(format!("rept-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.rpck");
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(path.clone(), None)
            .with_checkpoint_keep(2);
        assert_eq!(cfg.checkpoint_keep, 2);
        let core = ServeCore::start(cfg).expect("start");
        let mut positions = Vec::new();
        for chunk in stream.chunks(150).take(4) {
            core.ingest(chunk.to_vec()).expect("ingest");
            positions.push(core.checkpoint().expect("checkpoint"));
        }
        core.shutdown(); // final checkpoint at the last position: no-op rotation

        let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".rpck"))
            .collect();
        on_disk.sort();
        assert_eq!(
            on_disk.len(),
            2,
            "keep = 2 ⇒ primary + one rotated, got {on_disk:?}"
        );
        // The primary holds the newest position, the rotated sibling the
        // one before it — and both restore.
        let newest = ResumableRun::from_checkpoint_file(&path).expect("primary readable");
        assert_eq!(newest.position(), *positions.last().unwrap());
        let rotated = dir.join(on_disk.iter().find(|n| *n != "serve.rpck").unwrap());
        let older = ResumableRun::from_checkpoint_file(&rotated).expect("rotated readable");
        assert_eq!(older.position(), positions[positions.len() - 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_with_rotation_never_loses_the_primary_checkpoint() {
        // Rotation must preserve (hard link / copy), never move, the
        // primary: if the next write fails, the last good checkpoint
        // still sits at `checkpoint_path` for the restart to resume
        // from.
        let stream = stream();
        let dir = std::env::temp_dir().join(format!("rept-rot-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.rpck");
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(path.clone(), None)
            .with_checkpoint_keep(3);
        let core = ServeCore::start(cfg).expect("start");
        core.ingest(stream[..100].to_vec()).expect("ingest");
        let pos = core.checkpoint().expect("first checkpoint");
        // Sabotage every further write: a directory squats on the
        // write-then-rename temp path.
        std::fs::create_dir(dir.join("serve.rpck.tmp")).expect("squat tmp path");
        core.ingest(stream[100..200].to_vec()).expect("ingest");
        assert!(core.checkpoint().is_err(), "sabotaged write must fail");
        drop(core); // final best-effort checkpoint also fails — fine
        let back = ResumableRun::from_checkpoint_file(&path).expect("primary intact");
        assert_eq!(back.position(), pos, "last good checkpoint survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_keep_leaves_a_single_checkpoint_file() {
        let stream = stream();
        let dir = std::env::temp_dir().join(format!("rept-keep1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.rpck");
        let core =
            ServeCore::start(ServeConfig::new(base_cfg()).with_checkpoint(path.clone(), None))
                .expect("start");
        for chunk in stream.chunks(120).take(3) {
            core.ingest(chunk.to_vec()).expect("ingest");
            core.checkpoint().expect("checkpoint");
        }
        core.shutdown();
        let count = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".rpck"))
            .count();
        assert_eq!(count, 1, "keep = 1 must not accumulate rotated files");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_path_reports_error() {
        let core = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        assert!(core.checkpoint().is_err());
        core.shutdown();
    }

    #[test]
    fn periodic_checkpoints_fire() {
        let stream = stream();
        let path = temp_ckpt("core-periodic");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(path.clone(), Some(100))
            .with_snapshot_every(50);
        let core = ServeCore::start(cfg).expect("start");
        core.ingest(stream[..250].to_vec()).expect("ingest");
        core.flush();
        assert!(path.exists(), "≥ 100 edges ingested ⇒ checkpoint on disk");
        let on_disk = ResumableRun::from_checkpoint_file(&path).expect("readable");
        assert!(on_disk.position() >= 100);
        assert!(
            core.snapshot().checkpoints >= 1,
            "snapshot surfaces the checkpoint count"
        );
        core.shutdown();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_requires_a_checkpoint_path() {
        let err = ServeCore::start(ServeConfig::new(base_cfg()).with_journal()).err();
        assert!(matches!(
            err,
            Some(SnapshotError::Invalid("journal requires a checkpoint path"))
        ));
    }

    #[test]
    fn journal_grows_with_ingest_and_checkpoints_truncate_it() {
        let stream = stream();
        let dir = std::env::temp_dir().join(format!("rept-jnl-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.rpck");
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(path.clone(), None)
            .with_journal();
        let core = ServeCore::start(cfg).expect("start");
        core.ingest(stream[..200].to_vec()).expect("durable ingest");
        core.flush();
        let snap = core.snapshot();
        assert!(snap.durability.enabled);
        assert!(snap.durability.journal_bytes > 0, "acked batch journaled");
        assert!(snap.durability.journal_segments >= 1);
        assert_eq!(snap.durability.replayed, 0, "fresh start replays nothing");
        // A checkpoint covers the journal: it gets truncated away.
        core.checkpoint().expect("checkpoint");
        let snap = core.snapshot();
        assert_eq!(snap.durability.journal_bytes, 0, "fully checkpointed");
        assert_eq!(core.dlq_count(), 0);
        core.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn startup_replays_the_journal_tail_losslessly() {
        // Hand-write a journal with no checkpoint next to it — the
        // state a kill leaves when no checkpoint ever fired — and let
        // the core recover: every journaled edge must be replayed.
        let stream = stream();
        let oracle = Rept::new(base_cfg()).run_sequential(stream.iter().copied());
        let dir = std::env::temp_dir().join(format!("rept-jnl-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.rpck");
        let mut j = Journal::recover(&path, 1 << 20, SyncPolicy::PerRecord, 0)
            .expect("fresh journal")
            .journal;
        let mut pos = 0u64;
        for chunk in stream.chunks(111) {
            j.append(pos, chunk).expect("append");
            pos += chunk.len() as u64;
        }
        drop(j);

        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(path.clone(), None)
            .with_journal();
        let core = ServeCore::start(cfg).expect("recover");
        assert_eq!(core.position(), stream.len() as u64, "lossless");
        let snap = core.snapshot();
        assert_eq!(snap.durability.replayed, stream.len() as u64);
        assert_eq!(snap.global, oracle.global, "bit-identical to oracle");
        assert_eq!(snap.locals, oracle.locals);
        core.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_letters_are_captured_and_counted() {
        let dir = std::env::temp_dir().join(format!("rept-dlq-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(dir.join("serve.rpck"), None)
            .with_journal();
        let core = ServeCore::start(cfg).expect("start");
        core.dead_letter("INGEST 1-2 3x4", "expected NxN edge");
        assert_eq!(core.dlq_count(), 1);
        let text = std::fs::read_to_string(dir.join("serve.dlq")).expect("dlq file");
        assert!(text.contains("INGEST 1-2 3x4"), "verbatim line: {text}");
        core.shutdown();
        // Without a journal the DLQ is inert.
        let plain = ServeCore::start(ServeConfig::new(base_cfg())).expect("start");
        plain.dead_letter("INGEST x", "nope");
        assert_eq!(plain.dlq_count(), 0);
        plain.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shed_budget_keeps_stored_bytes_within_budget() {
        // Default quota policy (Shed) ⇒ reservoir engine: sustained
        // ingest far past the budget never grows the footprint past it
        // and never refuses a batch.
        let stream = stream();
        let budget = 4096u64;
        let cfg = ServeConfig::new(base_cfg())
            .with_memory_budget(budget)
            .with_snapshot_every(64);
        let core = ServeCore::start(cfg).expect("start");
        for chunk in stream.chunks(64) {
            core.ingest(chunk.to_vec()).expect("shed never refuses");
            core.flush();
            let h = core.health();
            assert!(
                h.stored_bytes <= budget,
                "stored {} B > budget {budget} B",
                h.stored_bytes
            );
        }
        let snap = core.snapshot();
        assert_eq!(snap.position, stream.len() as u64, "every edge consumed");
        assert!(
            snap.confidence95.is_none(),
            "reservoir estimates carry no REPT interval"
        );
        assert!(snap.global.is_finite() && snap.global >= 0.0);
        let h = core.health();
        assert_eq!(h.memory_budget, budget);
        assert!(!h.degraded, "shedding is not degradation");
        core.shutdown();
    }

    #[test]
    fn reservoir_checkpoint_resumes_bit_identically() {
        let stream = stream();
        let budget = 4096u64;
        let path = temp_ckpt("reservoir-resume");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig::new(base_cfg())
            .with_memory_budget(budget)
            .with_checkpoint(path.clone(), None);
        let core = ServeCore::start(cfg.clone()).expect("start");
        core.ingest(stream[..1200].to_vec()).expect("ingest");
        core.flush();
        let before = core.snapshot();
        core.shutdown();

        let resumed = ServeCore::start(cfg).expect("resume");
        assert_eq!(resumed.position(), 1200);
        resumed.flush();
        let after = resumed.snapshot();
        assert_eq!(after.global, before.global, "reservoir state restored");

        // Resuming under a different budget — or none at all — would
        // change the sampling semantics mid-stream, so it is refused.
        resumed.shutdown();
        let other_budget = ServeConfig::new(base_cfg())
            .with_memory_budget(budget * 2)
            .with_checkpoint(path.clone(), None);
        assert!(matches!(
            ServeCore::start(other_budget).err(),
            Some(SnapshotError::Invalid("checkpoint/budget mismatch"))
        ));
        let no_budget = ServeConfig::new(base_cfg()).with_checkpoint(path.clone(), None);
        assert!(matches!(
            ServeCore::start(no_budget).err(),
            Some(SnapshotError::Invalid("checkpoint/budget mismatch"))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn undersized_budget_is_refused_at_start() {
        let cfg = ServeConfig::new(base_cfg()).with_memory_budget(MIN_MEMORY_BUDGET - 1);
        assert!(matches!(
            ServeCore::start(cfg).err(),
            Some(SnapshotError::Invalid(
                "memory budget below the reservoir minimum"
            ))
        ));
    }

    #[test]
    fn quota_reject_refuses_past_budget_without_latching() {
        let stream = stream();
        let budget = 4096u64;
        let cfg = ServeConfig::new(base_cfg())
            .with_memory_budget(budget)
            .with_quota_policy(QuotaPolicy::Reject);
        let core = ServeCore::start(cfg).expect("start");
        let mut refusal = None;
        for chunk in stream.chunks(64) {
            if let Err(e) = core.ingest(chunk.to_vec()) {
                refusal = Some(e);
                break;
            }
        }
        let e = refusal.expect("a 4 KiB budget must refuse this stream");
        assert!(matches!(&e, IngestError::Quota(_)), "typed: {e:?}");
        assert!(e.to_string().starts_with("QUOTA "), "wire form: {e}");
        let pos = core.flush();
        assert!(pos > 0 && pos < stream.len() as u64, "accepted prefix only");
        assert_eq!(core.snapshot().position, pos);
        let h = core.health();
        assert!(h.stored_bytes >= budget, "refused only past the budget");
        assert!(!h.degraded, "Reject does not latch");
        // Adjacency never shrinks, so further writes stay refused —
        // but reads keep serving the frozen estimate.
        assert!(matches!(
            core.ingest(stream[..8].to_vec()),
            Err(IngestError::Quota(_))
        ));
        assert!(core.snapshot().global >= 0.0);
        core.shutdown();
    }

    #[test]
    fn quota_degrade_latches_the_tenant_read_only() {
        let stream = stream();
        let cfg = ServeConfig::new(base_cfg())
            .with_memory_budget(4096)
            .with_quota_policy(QuotaPolicy::Degrade);
        let core = ServeCore::start(cfg).expect("start");
        let mut refused = false;
        for chunk in stream.chunks(64) {
            if core.ingest(chunk.to_vec()).is_err() {
                refused = true;
                break;
            }
        }
        assert!(refused, "the budget must be breached");
        assert!(core.health().degraded, "first breach latches the flag");
        let pos = core.flush();
        // Even a tiny batch is refused now, with the degraded reason.
        match core.ingest(vec![Edge::new(1, 2)]) {
            Err(IngestError::Quota(reason)) => {
                assert!(reason.contains("degraded"), "reason: {reason}")
            }
            other => panic!("expected a quota refusal, got {other:?}"),
        }
        assert_eq!(core.flush(), pos, "no write moved the position");
        core.shutdown();
    }

    #[test]
    fn try_ingest_reports_busy_when_the_queue_is_full() {
        let mut cfg = ServeConfig::new(base_cfg());
        cfg.channel_capacity = 1;
        let core = ServeCore::start(cfg).expect("start");
        // Occupy the ingest thread with a long batch; with a 1-slot
        // queue behind it, non-blocking sends must surface Busy instead
        // of stalling the caller.
        let big: Vec<Edge> = (0..400_000).map(|i| Edge::new(i, i + 1)).collect();
        core.ingest(big).expect("queued");
        let mut saw_busy = false;
        for _ in 0..1024 {
            match core.try_ingest(vec![Edge::new(1, 2)]) {
                Ok(()) => {}
                Err(IngestError::Busy) => {
                    saw_busy = true;
                    break;
                }
                Err(e) => panic!("unexpected refusal: {e:?}"),
            }
        }
        assert!(saw_busy, "a full bounded queue must refuse, not block");
        core.flush();
        core.shutdown();
    }

    #[test]
    fn concurrent_producers_group_commit_losslessly() {
        // Four producers share one per-record-synced journal: appends
        // queued together share a single fsync barrier (group commit),
        // and every *acked* batch must survive a restart.
        let stream = stream();
        let dir = std::env::temp_dir().join(format!("rept-group-commit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("serve.rpck");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(path.clone(), None)
            .with_journal_sync(SyncPolicy::PerRecord);
        let core = Arc::new(ServeCore::start(cfg.clone()).expect("start"));
        let mut producers = Vec::new();
        for t in 0..4usize {
            let core = Arc::clone(&core);
            let chunks: Vec<Vec<Edge>> = stream
                .chunks(32)
                .skip(t)
                .step_by(4)
                .map(<[Edge]>::to_vec)
                .collect();
            producers.push(std::thread::spawn(move || {
                for chunk in chunks {
                    core.ingest(chunk).expect("acked");
                }
            }));
        }
        for p in producers {
            p.join().expect("producer");
        }
        let core = Arc::try_unwrap(core).expect("sole owner");
        assert_eq!(
            core.flush(),
            stream.len() as u64,
            "every acked batch applied"
        );
        core.shutdown();
        let resumed = ServeCore::start(cfg).expect("resume");
        assert_eq!(resumed.position(), stream.len() as u64, "lossless");
        resumed.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_reports_live_gauges() {
        let stream = stream();
        let dir = std::env::temp_dir().join(format!("rept-health-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cfg = ServeConfig::new(base_cfg())
            .with_checkpoint(dir.join("serve.rpck"), None)
            .with_journal();
        let core = ServeCore::start(cfg).expect("start");
        core.ingest(stream[..300].to_vec()).expect("ingest");
        core.flush();
        let h = core.health();
        assert_eq!(h.queue_capacity, 16, "default channel capacity");
        assert_eq!(h.memory_budget, 0, "0 = unlimited");
        assert!(h.stored_bytes > 0);
        assert!(h.journal_lag_bytes > 0, "journal ahead of the checkpoint");
        assert!(!h.degraded);
        core.dead_letter("INGEST bogus", "unparsable");
        assert_eq!(core.health().dlq, 1);
        core.checkpoint().expect("checkpoint");
        assert_eq!(
            core.health().journal_lag_bytes,
            0,
            "checkpoint retired the journal"
        );
        core.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
