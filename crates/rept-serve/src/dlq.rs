//! Per-tenant dead-letter file for malformed or rejected ingest.
//!
//! A line that *looks* like an `INGEST` but fails to parse — or parses
//! but is refused durably — is not silently discarded: it is appended
//! verbatim to a sibling of the checkpoint named `<stem>.dlq`, prefixed
//! with the rejection reason, one line per rejection:
//!
//! ```text
//! <reason>\t<original line>\n
//! ```
//!
//! The file is plain text on purpose: an operator can inspect, fix and
//! re-feed it with shell tools. The running count is surfaced through
//! `STATS` (`dlq=`) and `JOURNAL STATS`; on restart the count is
//! re-seeded from the existing file so it survives a resume.
//!
//! Writes are buffered-append without fsync — the DLQ is an operator
//! aid, not part of the durability contract the journal provides.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Append-only capture of rejected ingest lines. Cheap to share: the
/// count is atomic and only actual rejections take the file lock.
#[derive(Debug)]
pub struct DeadLetterQueue {
    path: PathBuf,
    file: Mutex<File>,
    count: AtomicU64,
}

impl DeadLetterQueue {
    /// The dead-letter file that belongs to the checkpoint at `ckpt`:
    /// `<stem>.dlq` in the same directory.
    pub fn path_for(ckpt: &Path) -> PathBuf {
        let stem = ckpt
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "checkpoint".to_string());
        ckpt.with_file_name(format!("{stem}.dlq"))
    }

    /// Opens (or creates) the dead-letter file, re-seeding the count
    /// from lines already present.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn open(path: PathBuf) -> std::io::Result<Self> {
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => text.lines().count() as u64,
            Err(_) => 0,
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            file: Mutex::new(file),
            count: AtomicU64::new(existing),
        })
    }

    /// Records one rejected line with its reason. Line breaks inside
    /// either part are flattened so each rejection stays one line.
    pub fn record(&self, line: &str, reason: &str) {
        let reason: String = reason
            .chars()
            .map(|c| {
                if c == '\t' || c == '\n' || c == '\r' {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        let line: String = line
            .chars()
            .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
            .collect();
        let entry = format!("{reason}\t{}\n", line.trim_end());
        if let Ok(mut file) = self.file.lock() {
            if file.write_all(entry.as_bytes()).is_ok() {
                self.count.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of rejected lines captured (including pre-restart ones).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Atomically takes every captured `(reason, line)` entry and
    /// truncates the file — the `DLQ REPLAY` primitive. Entries are
    /// returned in capture order; lines that fail replay are expected
    /// to be re-`record`ed by the caller, so a crash mid-replay loses
    /// at most the in-flight entries (the DLQ is an operator aid, not
    /// part of the durability contract).
    pub fn drain(&self) -> Vec<(String, String)> {
        let Ok(file) = self.file.lock() else {
            return Vec::new();
        };
        let text = std::fs::read_to_string(&self.path).unwrap_or_default();
        let entries: Vec<(String, String)> = text
            .lines()
            .map(|entry| match entry.split_once('\t') {
                Some((reason, line)) => (reason.to_string(), line.to_string()),
                // A hand-edited entry without a tab: treat the whole
                // line as the payload.
                None => (String::new(), entry.to_string()),
            })
            .collect();
        if file.set_len(0).is_ok() {
            self.count.store(0, Ordering::Relaxed);
        }
        entries
    }

    /// Where the dead-letter file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_count_and_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("rept-dlq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = DeadLetterQueue::path_for(&dir.join("serve.rpck"));
        assert!(path.ends_with("serve.dlq"));

        let dlq = DeadLetterQueue::open(path.clone()).expect("open");
        assert_eq!(dlq.count(), 0);
        dlq.record("INGEST 1-1", "expected NxN edge");
        dlq.record("INGEST a b\nextra", "bad\tnode id");
        assert_eq!(dlq.count(), 2);
        drop(dlq);

        let text = std::fs::read_to_string(&path).expect("read dlq");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "expected NxN edge\tINGEST 1-1");
        assert_eq!(
            lines[1], "bad node id\tINGEST a b extra",
            "breaks flattened"
        );

        // Reopen re-seeds the count and keeps appending.
        let dlq = DeadLetterQueue::open(path).expect("reopen");
        assert_eq!(dlq.count(), 2);
        dlq.record("INGEST", "missing edges");
        assert_eq!(dlq.count(), 3);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_takes_entries_and_truncates() {
        let dir = std::env::temp_dir().join(format!("rept-dlq-drain-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = DeadLetterQueue::path_for(&dir.join("serve.rpck"));
        std::fs::remove_file(&path).ok();

        let dlq = DeadLetterQueue::open(path.clone()).expect("open");
        dlq.record("INGEST 1 1", "self-loop 1-1 rejected");
        dlq.record("INGEST a b", "bad node id \"a\"");
        let entries = dlq.drain();
        assert_eq!(
            entries,
            vec![
                (
                    "self-loop 1-1 rejected".to_string(),
                    "INGEST 1 1".to_string()
                ),
                ("bad node id \"a\"".to_string(), "INGEST a b".to_string()),
            ]
        );
        assert_eq!(dlq.count(), 0, "drain resets the count");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read").len(),
            0,
            "drain truncates the file"
        );
        // Recording after a drain starts a fresh capture at offset 0.
        dlq.record("INGEST 2 2", "self-loop 2-2 rejected");
        assert_eq!(dlq.count(), 1);
        let again = dlq.drain();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].1, "INGEST 2 2");
        assert!(dlq.drain().is_empty(), "empty file drains to nothing");

        std::fs::remove_dir_all(&dir).ok();
    }
}
