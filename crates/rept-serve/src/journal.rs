//! Append-only, segmented write-ahead edge journal — the lossless half
//! of the crash-safety story.
//!
//! Checkpoints alone make resume *deterministic*: a kill loses every
//! edge accepted after the last RPCK file, and the producer must replay
//! them. The journal closes that gap. The ingest thread appends one
//! length-prefixed, CRC-guarded record per accepted batch **before**
//! applying it, and (under [`SyncPolicy::PerRecord`], the default)
//! fsyncs before the batch is acknowledged — so an acked edge is on
//! disk before the caller hears `OK`. Recovery restores the checkpoint,
//! then replays the journal tail above the checkpointed position:
//! resume becomes **lossless**, not merely bit-identical-given-replay.
//!
//! ## On-disk format
//!
//! The journal lives next to its checkpoint: segments are siblings of
//! the checkpoint path named `<stem>.wal.<start position, zero-padded>`
//! (zero padding makes name order equal position order). Each segment:
//!
//! ```text
//! magic "RJL1" (4 bytes) | start position (u64 LE)        — header
//! len (u32 LE) | crc32 (u32 LE) | payload                 — record 0
//! len (u32 LE) | crc32 (u32 LE) | payload                 — record 1
//! …
//! ```
//!
//! A record's payload is its own start position (u64 LE) followed by
//! `(len − 8) / 8` edges as `(u, v)` u32 LE pairs; `crc32` (IEEE) is
//! computed over the payload. Records are position-contiguous: each
//! starts where the previous ended, and the first starts at the segment
//! header's position. Everything is redundant on purpose — a torn final
//! record (the kill-mid-append case) fails the length or CRC check and
//! is **dropped, not fatal**; a record that fails contiguity marks the
//! same cut. Nothing past a cut is trusted.
//!
//! ## Truncation
//!
//! A successful checkpoint at position `p` makes every record below `p`
//! redundant; [`Journal::truncate_to`] then deletes segments whose
//! coverage ends at or below `p`. A kill between the checkpoint rename
//! and the truncation leaves stale segments behind — recovery skips
//! records below the restored position, so the window is harmless.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use rept_graph::edge::Edge;

use crate::metrics::ServeMetrics;

/// Magic bytes opening every journal segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"RJL1";
/// Segment header size: magic plus the u64 start position.
const SEGMENT_HEADER: u64 = 12;
/// Record header size: u32 payload length plus u32 CRC-32.
const RECORD_HEADER: usize = 8;
/// Payload bytes before the edges: the record's own start position.
const PAYLOAD_PREFIX: usize = 8;
/// Bytes per edge in a record payload.
const EDGE_BYTES: usize = 8;

/// When the journal fsyncs relative to the ingest acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every appended record, before the ack — an acked
    /// edge is durable. The default, and the only policy under which
    /// recovery is lossless against power failure.
    #[default]
    PerRecord,
    /// Ack after the buffered write; fsync on segment rotation, flush,
    /// checkpoint and shutdown. Much cheaper per batch, but a kill can
    /// lose acked-but-unsynced records — recovery still detects the
    /// missing tail gracefully (it simply is not there).
    Batched,
}

impl SyncPolicy {
    /// Stable lowercase name (bench output, docs).
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::PerRecord => "per-record",
            SyncPolicy::Batched => "batched",
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `bytes` — the per-record integrity guard.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The currently-appended segment.
#[derive(Debug)]
struct ActiveSegment {
    file: File,
    path: PathBuf,
    /// Stream position of the segment's first record.
    start: u64,
    /// File length in bytes (header + records written so far).
    len: u64,
}

/// A sealed segment kept until a checkpoint retires it.
#[derive(Debug)]
struct ClosedSegment {
    path: PathBuf,
    /// Stream position one past the segment's last record.
    end: u64,
    /// File length in bytes.
    bytes: u64,
}

/// The write-ahead journal of one serving core. Owned exclusively by
/// the ingest thread — appends, syncs and truncations all happen in
/// stream order with no locking.
#[derive(Debug)]
pub struct Journal {
    /// The checkpoint path the segment names derive from.
    ckpt_path: PathBuf,
    /// Rotation threshold: a segment reaching this size is sealed.
    segment_bytes: u64,
    sync: SyncPolicy,
    active: Option<ActiveSegment>,
    closed: Vec<ClosedSegment>,
    /// Stream position the next appended record must start at.
    next_position: u64,
    /// Unsynced bytes are sitting in the active segment (Batched only).
    unsynced: bool,
    /// When set, append/fsync durations and counts are recorded here
    /// (the owning core's metric set — see [`Journal::instrument`]).
    metrics: Option<Arc<ServeMetrics>>,
}

/// What [`Journal::recover`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The journal, positioned to continue appending.
    pub journal: Journal,
    /// Edges above the checkpointed position, in stream order — the
    /// tail the caller must apply to make the restored run lossless.
    pub replay: Vec<Edge>,
    /// A torn or corrupt tail was detected and dropped (already logged).
    pub dropped_tail: bool,
}

/// The segment file for records starting at `start`, next to `ckpt`.
fn segment_path(ckpt: &Path, start: u64) -> PathBuf {
    let stem = ckpt
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    ckpt.with_file_name(format!("{stem}.wal.{start:020}"))
}

/// All segment files next to `ckpt`, sorted by start position.
fn list_segments(ckpt: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let (Some(dir), Some(stem)) = (ckpt.parent(), ckpt.file_stem()) else {
        return Ok(Vec::new());
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let prefix = format!("{}.wal.", stem.to_string_lossy());
    let mut segments = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name.strip_prefix(&prefix) else {
            continue;
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(start) = digits.parse::<u64>() else {
            continue;
        };
        segments.push((start, entry.path()));
    }
    segments.sort();
    Ok(segments)
}

/// One decoded record: its start position and the byte length it
/// occupied in the segment file.
struct DecodedRecord {
    start: u64,
    edges: Vec<Edge>,
    stored_bytes: u64,
}

/// Decodes the record at `bytes[at..]`. `Ok(None)` = clean end of the
/// segment; `Err(reason)` = torn or corrupt (drop from here).
fn decode_record(bytes: &[u8], at: usize) -> Result<Option<DecodedRecord>, &'static str> {
    if at == bytes.len() {
        return Ok(None);
    }
    let rest = &bytes[at..];
    if rest.len() < RECORD_HEADER {
        return Err("torn record header");
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    if len < PAYLOAD_PREFIX + EDGE_BYTES || !(len - PAYLOAD_PREFIX).is_multiple_of(EDGE_BYTES) {
        return Err("invalid record length");
    }
    if rest.len() - RECORD_HEADER < len {
        return Err("torn record payload");
    }
    let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
    if crc32(payload) != crc {
        return Err("record CRC mismatch");
    }
    let start = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let n = (len - PAYLOAD_PREFIX) / EDGE_BYTES;
    let mut edges = Vec::with_capacity(n);
    for i in 0..n {
        let at = PAYLOAD_PREFIX + i * EDGE_BYTES;
        let u = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
        let v = u32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap());
        // A self-loop cannot have been appended; a CRC collision hiding
        // one is astronomically unlikely but must not panic recovery.
        let Some(e) = Edge::try_new(u, v) else {
            return Err("self-loop edge in record");
        };
        edges.push(e);
    }
    Ok(Some(DecodedRecord {
        start,
        edges,
        stored_bytes: (RECORD_HEADER + len) as u64,
    }))
}

impl Journal {
    /// Scans the segments next to `ckpt_path`, replays the tail above
    /// `base` (the restored checkpoint's position), and returns a
    /// journal ready to continue appending at `base + replay.len()`.
    ///
    /// Damage tolerance, in order of severity:
    ///
    /// * Segments wholly below `base` are deleted (a checkpoint made
    ///   them redundant; the kill interrupted their truncation).
    /// * Records below `base` inside surviving segments are skipped; a
    ///   record straddling `base` is partially applied.
    /// * A torn final record (short header/payload), a CRC mismatch, or
    ///   a contiguity violation cuts the journal there: the bad record
    ///   and everything after it is dropped (logged, and the files are
    ///   trimmed to the valid prefix), never fatal.
    /// * A journal whose surviving records *start* above `base` is a
    ///   gap — acked edges are missing — and **is** fatal.
    ///
    /// # Errors
    ///
    /// Filesystem errors, and a detected gap above `base` (kind
    /// [`std::io::ErrorKind::InvalidData`]).
    pub fn recover(
        ckpt_path: &Path,
        segment_bytes: u64,
        sync: SyncPolicy,
        base: u64,
    ) -> std::io::Result<Recovery> {
        let segments = list_segments(ckpt_path)?;
        // Only the run of segments from the last one starting at or
        // below `base` matters; older ones are fully checkpointed.
        let first_relevant = segments
            .iter()
            .rposition(|(start, _)| *start <= base)
            .unwrap_or(0);
        if let Some((start, path)) = segments.first() {
            if *start > base {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "journal gap: segment {path:?} starts at {start} but the checkpoint \
                         covers only {base} edges"
                    ),
                ));
            }
        }
        for (_, path) in &segments[..first_relevant] {
            let _ = std::fs::remove_file(path);
        }

        let mut journal = Journal {
            ckpt_path: ckpt_path.to_path_buf(),
            segment_bytes,
            sync,
            active: None,
            closed: Vec::new(),
            next_position: base,
            unsynced: false,
            metrics: None,
        };
        let mut replay: Vec<Edge> = Vec::new();
        let mut dropped_tail = false;
        // Running stream position across records; `None` before the
        // first record of the first surviving segment.
        let mut pos: Option<u64> = None;
        let mut cut = false;

        for (idx, (start, path)) in segments[first_relevant..].iter().enumerate() {
            if cut {
                // Nothing past a cut is trusted; remove it.
                let _ = std::fs::remove_file(path);
                continue;
            }
            let bytes = std::fs::read(path)?;
            let header_ok = bytes.len() >= SEGMENT_HEADER as usize
                && bytes[..4] == SEGMENT_MAGIC
                && u64::from_le_bytes(bytes[4..12].try_into().unwrap()) == *start;
            let contiguous = idx == 0 || pos == Some(*start);
            if !header_ok || !contiguous {
                eprintln!(
                    "rept-serve: journal segment {path:?} is {} — dropping it and everything after",
                    if header_ok {
                        "discontiguous"
                    } else {
                        "torn or corrupt"
                    }
                );
                let _ = std::fs::remove_file(path);
                cut = true;
                dropped_tail = true;
                continue;
            }
            let mut at = SEGMENT_HEADER as usize;
            let mut seg_pos = *start;
            let mut valid_len = at as u64;
            loop {
                match decode_record(&bytes, at) {
                    Ok(None) => break,
                    Ok(Some(rec)) => {
                        if rec.start != seg_pos {
                            eprintln!(
                                "rept-serve: journal record at {path:?}+{at} claims position \
                                 {} (expected {seg_pos}) — dropping the tail",
                                rec.start
                            );
                            cut = true;
                            dropped_tail = true;
                            break;
                        }
                        let end = rec.start + rec.edges.len() as u64;
                        if end > base {
                            let skip = base.saturating_sub(rec.start) as usize;
                            replay.extend_from_slice(&rec.edges[skip..]);
                        }
                        seg_pos = end;
                        at += rec.stored_bytes as usize;
                        valid_len = at as u64;
                    }
                    Err(reason) => {
                        eprintln!(
                            "rept-serve: journal {path:?} ends in a {reason} at byte {at} — \
                             dropping the torn tail"
                        );
                        cut = true;
                        dropped_tail = true;
                        break;
                    }
                }
            }
            pos = Some(seg_pos);
            if cut && valid_len <= SEGMENT_HEADER {
                // Nothing valid in this segment: remove it outright.
                let _ = std::fs::remove_file(path);
                pos = Some(*start);
                continue;
            }
            // The last surviving segment becomes the active one,
            // trimmed to its valid prefix; earlier ones are closed.
            journal.closed.push(ClosedSegment {
                path: path.clone(),
                end: seg_pos,
                bytes: valid_len,
            });
            if cut && valid_len < bytes.len() as u64 {
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(valid_len)?;
                file.sync_all()?;
            }
        }

        let tail = pos.unwrap_or(base);
        if tail < base {
            // Every surviving record is already inside the checkpoint
            // (e.g. a corrupt record below `base` cut the scan): the
            // journal contributes nothing — start clean to keep the
            // contiguity invariant for future appends.
            for seg in journal.closed.drain(..) {
                let _ = std::fs::remove_file(&seg.path);
            }
            journal.next_position = base;
            return Ok(Recovery {
                journal,
                replay: Vec::new(),
                dropped_tail,
            });
        }
        journal.next_position = tail;
        // Reopen the newest surviving segment for appending.
        if let Some(last) = journal.closed.pop() {
            let mut file = OpenOptions::new().write(true).open(&last.path)?;
            file.seek(SeekFrom::Start(last.bytes))?;
            // The name records the *start* position, recomputable from
            // the path; `end` tracked separately per segment.
            let start = last
                .path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.rsplit('.').next())
                .and_then(|d| d.parse().ok())
                .unwrap_or(base);
            journal.active = Some(ActiveSegment {
                file,
                path: last.path,
                start,
                len: last.bytes,
            });
        }
        Ok(Recovery {
            journal,
            replay,
            dropped_tail,
        })
    }

    /// Appends one batch as a single record. `start` must be the
    /// journal's next position (the run's position before the batch is
    /// applied) — the invariant that journal order equals apply order.
    ///
    /// Under [`SyncPolicy::PerRecord`] the record is fsynced before
    /// this returns; under [`SyncPolicy::Batched`] it is buffered until
    /// the next [`Self::sync`] point.
    ///
    /// # Errors
    ///
    /// Filesystem errors (the record must then be treated as not
    /// written — the caller must not ack the batch).
    pub fn append(&mut self, start: u64, edges: &[Edge]) -> std::io::Result<()> {
        self.append_inner(start, edges, false)
    }

    /// Routes append/fsync timings and counts into `metrics` from now
    /// on. Called once by [`crate::core::ServeCore::start`] when timing
    /// instrumentation is enabled; an uninstrumented journal records
    /// nothing and reads no clocks.
    pub(crate) fn instrument(&mut self, metrics: Arc<ServeMetrics>) {
        self.metrics = Some(metrics);
    }

    /// Times an fsync of `file` and records it (duration histogram,
    /// counter, slow-op trace) when instrumented.
    fn timed_sync_data(metrics: Option<&Arc<ServeMetrics>>, file: &File) -> std::io::Result<()> {
        let Some(m) = metrics else {
            return file.sync_data();
        };
        let started = Instant::now();
        file.sync_data()?;
        let took = started.elapsed();
        m.journal_fsyncs.inc();
        m.fsync_micros.record_duration(took);
        m.trace.record("fsync", took, String::new);
        Ok(())
    }

    /// Appends one batch like [`Self::append`] but **defers the fsync**
    /// even under [`SyncPolicy::PerRecord`]: the record is buffered and
    /// covered by the next [`Self::sync`] call. This is the group-commit
    /// primitive — the ingest thread writes every member of a coalesced
    /// group with this, then issues one barrier `sync()` for all of
    /// them, so N concurrent producers share a single fsync.
    ///
    /// The caller **must not ack** any deferred batch until that
    /// `sync()` succeeds.
    ///
    /// # Errors
    ///
    /// Filesystem errors (the record must then be treated as not
    /// written).
    pub fn append_deferred(&mut self, start: u64, edges: &[Edge]) -> std::io::Result<()> {
        self.append_inner(start, edges, true)
    }

    fn append_inner(
        &mut self,
        start: u64,
        edges: &[Edge],
        defer_sync: bool,
    ) -> std::io::Result<()> {
        if start != self.next_position {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "journal append out of order: position {start}, expected {}",
                    self.next_position
                ),
            ));
        }
        if edges.is_empty() {
            return Ok(());
        }
        if self
            .active
            .as_ref()
            .is_none_or(|a| a.len >= self.segment_bytes)
        {
            self.rotate()?;
        }
        let started = self.metrics.as_ref().map(|_| Instant::now());
        let mut payload = Vec::with_capacity(PAYLOAD_PREFIX + edges.len() * EDGE_BYTES);
        payload.extend_from_slice(&start.to_le_bytes());
        for e in edges {
            payload.extend_from_slice(&e.u().to_le_bytes());
            payload.extend_from_slice(&e.v().to_le_bytes());
        }
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let active = self.active.as_mut().expect("rotated above");
        active.file.write_all(&record)?;
        active.len += record.len() as u64;
        self.next_position = start + edges.len() as u64;
        if let (Some(m), Some(started)) = (&self.metrics, started) {
            m.journal_appends.inc();
            m.journal_append_micros.record_duration(started.elapsed());
        }
        match self.sync {
            SyncPolicy::PerRecord if !defer_sync => {
                Self::timed_sync_data(self.metrics.as_ref(), &active.file)?;
            }
            _ => self.unsynced = true,
        }
        Ok(())
    }

    /// Seals the active segment (if any) and opens a fresh one starting
    /// at the current position.
    fn rotate(&mut self) -> std::io::Result<()> {
        if let Some(active) = self.active.take() {
            // Seal durably: once closed, a segment is never written
            // again, so its bytes must not linger in the page cache.
            if self.unsynced {
                active.file.sync_data()?;
                self.unsynced = false;
            }
            self.closed.push(ClosedSegment {
                path: active.path,
                end: self.next_position,
                bytes: active.len,
            });
        }
        let path = segment_path(&self.ckpt_path, self.next_position);
        let mut file = File::create(&path)?;
        file.write_all(&SEGMENT_MAGIC)?;
        file.write_all(&self.next_position.to_le_bytes())?;
        self.active = Some(ActiveSegment {
            file,
            path,
            start: self.next_position,
            len: SEGMENT_HEADER,
        });
        Ok(())
    }

    /// Fsyncs buffered records (a no-op under
    /// [`SyncPolicy::PerRecord`], which never buffers).
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced {
            if let Some(active) = &self.active {
                Self::timed_sync_data(self.metrics.as_ref(), &active.file)?;
            }
            self.unsynced = false;
        }
        Ok(())
    }

    /// Retires everything a checkpoint at `position` made redundant:
    /// deletes sealed segments whose coverage ends at or below it, and
    /// the active segment too when every appended record is below it.
    /// Best-effort — a file that fails to delete is retried by the next
    /// truncation (and skipped by the next recovery).
    pub fn truncate_to(&mut self, position: u64) {
        self.closed.retain(|seg| {
            if seg.end <= position {
                let _ = std::fs::remove_file(&seg.path);
                false
            } else {
                true
            }
        });
        if self.next_position <= position {
            if let Some(active) = self.active.take() {
                drop(active.file);
                let _ = std::fs::remove_file(&active.path);
                self.unsynced = false;
            }
        }
    }

    /// Stream position the next appended record starts at.
    pub fn position(&self) -> u64 {
        self.next_position
    }

    /// Total journal bytes currently on disk.
    pub fn bytes(&self) -> u64 {
        self.closed.iter().map(|s| s.bytes).sum::<u64>() + self.active.as_ref().map_or(0, |a| a.len)
    }

    /// Number of live segment files.
    pub fn segments(&self) -> u64 {
        self.closed.len() as u64 + u64::from(self.active.is_some())
    }

    /// Start position of the active segment (diagnostics/tests).
    pub fn active_segment_start(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_ckpt(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rept-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("serve.rpck")
    }

    fn edges(range: std::ops::Range<u32>) -> Vec<Edge> {
        range.map(|i| Edge::new(i, i + 1)).collect()
    }

    fn cleanup(ckpt: &Path) {
        if let Some(dir) = ckpt.parent() {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_recover_roundtrip() {
        let ckpt = temp_ckpt("roundtrip");
        let all = edges(0..100);
        {
            let rec =
                Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0).expect("fresh recover");
            assert!(rec.replay.is_empty());
            let mut j = rec.journal;
            let mut pos = 0u64;
            for chunk in all.chunks(13) {
                j.append(pos, chunk).expect("append");
                pos += chunk.len() as u64;
            }
            assert_eq!(j.position(), 100);
            assert!(j.bytes() > 0);
        } // drop without truncation ≙ kill
        let rec = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0).expect("recover");
        assert!(!rec.dropped_tail);
        assert_eq!(rec.replay, all, "full tail above an empty checkpoint");
        assert_eq!(rec.journal.position(), 100);
        // A restored base mid-stream replays only the tail, even from
        // the middle of a record (27 splits the 13-edge records).
        let rec = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 27).expect("recover");
        assert_eq!(rec.replay, all[27..].to_vec());
        cleanup(&ckpt);
    }

    #[test]
    fn rotation_creates_segments_and_truncation_retires_them() {
        let ckpt = temp_ckpt("rotate");
        let all = edges(0..64);
        let mut j = Journal::recover(&ckpt, 64, SyncPolicy::PerRecord, 0)
            .expect("recover")
            .journal;
        let mut pos = 0u64;
        for chunk in all.chunks(4) {
            j.append(pos, chunk).expect("append");
            pos += chunk.len() as u64;
        }
        assert!(j.segments() > 1, "tiny threshold forces rotation");
        let before = j.bytes();
        j.truncate_to(32);
        assert!(j.bytes() < before, "sealed segments below 32 retired");
        // Recovery after truncation: only the tail above 32 remains and
        // it must still replay cleanly above a checkpoint at 32.
        drop(j);
        let rec = Journal::recover(&ckpt, 64, SyncPolicy::PerRecord, 32).expect("recover");
        assert_eq!(rec.replay, all[32..].to_vec());
        // Truncating at the head retires everything.
        let mut j = rec.journal;
        j.truncate_to(64);
        assert_eq!(j.bytes(), 0);
        assert_eq!(j.segments(), 0);
        drop(j);
        let rec = Journal::recover(&ckpt, 64, SyncPolicy::PerRecord, 64).expect("recover");
        assert!(rec.replay.is_empty());
        assert_eq!(rec.journal.position(), 64);
        cleanup(&ckpt);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let ckpt = temp_ckpt("torn");
        let all = edges(0..20);
        let mut j = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0)
            .expect("recover")
            .journal;
        j.append(0, &all[..10]).expect("append");
        j.append(10, &all[10..]).expect("append");
        let seg = segment_path(&ckpt, 0);
        let bytes = std::fs::read(&seg).expect("read segment");
        drop(j);
        // Chop one byte off the final record: torn payload.
        std::fs::write(&seg, &bytes[..bytes.len() - 1]).expect("truncate");
        let rec = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0).expect("recover");
        assert!(rec.dropped_tail);
        assert_eq!(rec.replay, all[..10].to_vec(), "first record survives");
        assert_eq!(rec.journal.position(), 10);
        // The journal keeps appending from the cut.
        let mut j = rec.journal;
        j.append(10, &all[10..]).expect("re-append");
        drop(j);
        let rec = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0).expect("recover");
        assert!(!rec.dropped_tail);
        assert_eq!(rec.replay, all);
        cleanup(&ckpt);
    }

    #[test]
    fn crc_corruption_is_dropped_not_fatal() {
        let ckpt = temp_ckpt("crc");
        let all = edges(0..20);
        let mut j = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0)
            .expect("recover")
            .journal;
        j.append(0, &all[..10]).expect("append");
        j.append(10, &all[10..]).expect("append");
        let seg = segment_path(&ckpt, 0);
        drop(j);
        let mut bytes = std::fs::read(&seg).expect("read segment");
        // Flip one payload byte of the *second* record. First record:
        // header 12 + 8 (rec header) + 8 + 80 payload.
        let second_payload = 12 + 8 + 8 + 80 + 8 + 4;
        bytes[second_payload] ^= 0xFF;
        std::fs::write(&seg, &bytes).expect("corrupt");
        let rec = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0).expect("recover");
        assert!(rec.dropped_tail);
        assert_eq!(rec.replay, all[..10].to_vec());
        cleanup(&ckpt);
    }

    #[test]
    fn gap_above_checkpoint_is_fatal() {
        let ckpt = temp_ckpt("gap");
        let mut j = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0)
            .expect("recover")
            .journal;
        j.append(0, &edges(0..10)).expect("append");
        drop(j);
        // Pretend the checkpoint only covers 3 edges but the segment
        // file was (externally) renamed to start at 5: edges 3..5 are
        // claimed durable yet gone.
        let seg = segment_path(&ckpt, 0);
        std::fs::rename(&seg, segment_path(&ckpt, 5)).expect("rename");
        let err = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 3).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("gap"), "{err}");
        cleanup(&ckpt);
    }

    #[test]
    fn batched_sync_survives_explicit_sync_points() {
        let ckpt = temp_ckpt("batched");
        let all = edges(0..30);
        let mut j = Journal::recover(&ckpt, 1 << 20, SyncPolicy::Batched, 0)
            .expect("recover")
            .journal;
        j.append(0, &all).expect("append");
        j.sync().expect("sync");
        drop(j);
        let rec = Journal::recover(&ckpt, 1 << 20, SyncPolicy::Batched, 0).expect("recover");
        assert_eq!(rec.replay, all);
        assert_eq!(SyncPolicy::Batched.name(), "batched");
        assert_eq!(SyncPolicy::PerRecord.name(), "per-record");
        cleanup(&ckpt);
    }

    #[test]
    fn deferred_appends_survive_once_synced() {
        let ckpt = temp_ckpt("deferred");
        let all = edges(0..30);
        let mut j = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0)
            .expect("recover")
            .journal;
        // Group commit: members written with the fsync deferred, then
        // one barrier covers them all — even under PerRecord.
        j.append_deferred(0, &all[..10]).expect("append");
        j.append_deferred(10, &all[10..20]).expect("append");
        j.sync().expect("barrier");
        // A final non-deferred append keeps working after the barrier.
        j.append(20, &all[20..]).expect("append");
        drop(j);
        let rec = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0).expect("recover");
        assert!(!rec.dropped_tail);
        assert_eq!(rec.replay, all, "all three records durable");
        cleanup(&ckpt);
    }

    #[test]
    fn out_of_order_append_is_refused() {
        let ckpt = temp_ckpt("order");
        let mut j = Journal::recover(&ckpt, 1 << 20, SyncPolicy::PerRecord, 0)
            .expect("recover")
            .journal;
        j.append(0, &edges(0..4)).expect("append");
        assert!(j.append(3, &edges(0..4)).is_err(), "position regression");
        assert!(j.append(9, &edges(0..4)).is_err(), "position skip");
        j.append(4, &edges(0..4)).expect("contiguous append works");
        cleanup(&ckpt);
    }
}
