//! **rept-serve** — a concurrent, multi-tenant triangle-count serving
//! subsystem.
//!
//! The paper's motivating scenarios (spam/fraud ranking, router-level
//! monitoring) are *online*: edges arrive continuously and estimates
//! are queried while the stream is still running. This crate turns the
//! REPT estimator into that service — std-only, `#![forbid(unsafe_code)]`:
//!
//! * [`core::ServeCore`] — the transport-free subsystem: one ingest
//!   thread drives the unified execution core
//!   ([`EngineCore`](rept_core::engine::EngineCore), wrapped by
//!   [`ResumableRun`](rept_core::resume::ResumableRun) for
//!   checkpointing — the *same* code the batch drivers run)
//!   incrementally in batches behind a **bounded** channel (producers
//!   feel backpressure), periodically assembles an immutable
//!   [`snapshot::Snapshot`] (global `τ̂` with a plug-in 95% confidence
//!   interval, per-node `τ̂_v` with a top-k index, stream and memory
//!   stats) and publishes it through an `Arc` swap — **snapshot-isolated
//!   queries** that never block ingestion. Idle publication points
//!   (no edges since the last snapshot) reuse the published `Arc` body
//!   instead of re-cloning the counter maps.
//! * [`tenant::TenantRouter`] — the multi-tenant tier: N named
//!   `ServeCore`s (independent config/engine/seed per tenant;
//!   `interval=i` tenants derive their seed through
//!   [`IntervalEstimator`](rept_core::interval::IntervalEstimator), so
//!   sliding-window estimates are just tenants), per-tenant checkpoint
//!   directories with rotation, all-tenant resume-on-startup, and
//!   cross-tenant `STATS *` / `TOPK k *` aggregation.
//! * [`server::Server`] — a line-oriented TCP front-end over a thread
//!   pool; [`client::Client`] is the matching blocking client. Each
//!   connection is scoped to one *current tenant* (`USE`), starting at
//!   `default` — so v1 clients work unchanged.
//! * **Crash safety** — periodic / on-demand / at-shutdown checkpoints
//!   in the RPCK v4 format (write-then-rename; v1–v3 blobs still
//!   restore), resume-on-startup, and optional rotation keeping the
//!   last *k* checkpoint files ([`ServeConfig::checkpoint_keep`]).
//!   Kill-and-restart plus replay from the checkpointed position is
//!   **bit-identical** to an uninterrupted run, on every engine and for
//!   every tenant — the serve proptests pin this down.
//! * **Durability** — an optional per-tenant write-ahead
//!   [`journal`] ([`ServeConfig::with_journal`]): acked batches are
//!   CRC-guarded and fsynced *before* the ack, a checkpoint truncates
//!   the covered segments, and startup replays the journal tail — so
//!   recovery is **lossless**, not merely deterministic, with torn
//!   final records dropped rather than fatal. Rejected ingest lines
//!   are captured verbatim in a per-tenant dead-letter file ([`dlq`]).
//!   The fault-injection suite (`tests/fault.rs`) kills cores at
//!   arbitrary points and proves recovery equals the acked prefix;
//!   `docs/DURABILITY.md` specifies the format and contract.
//! * **Overload resilience** — per-tenant memory quotas
//!   ([`ServeConfig::with_memory_budget`]): under the default
//!   [`core::QuotaPolicy::Shed`] the tenant runs the bounded-memory
//!   reservoir engine ([`ReservoirRun`](rept_core::reservoir::ReservoirRun),
//!   stored bytes never exceed the budget, accuracy degrades
//!   gracefully); under `reject`/`degrade` the full engine runs and
//!   writes past the budget come back as typed **`ERR QUOTA`**
//!   rejections (dead-lettered, never retried by the client). A full
//!   ingest queue surfaces as **`ERR BUSY`** backpressure instead of
//!   blocking the connection handler — transient, retried by the
//!   client with jittered exponential backoff. `HEALTH` reports the
//!   pressure gauges; `DLQ REPLAY` feeds the dead-letter file back
//!   through ingest. Under the per-record sync policy, concurrent
//!   producers' appends are **group-committed**: batches queued while
//!   an fsync would be in flight share one durability barrier.
//! * **Observability** — every core owns a [`metrics::ServeMetrics`]
//!   set of lock-free counters, gauges and log₂-bucket histograms
//!   (queue wait, apply, journal append/fsync, group-commit size,
//!   checkpoint, snapshot publication, per-verb query latency, typed
//!   error counts) plus a slow-op trace ring. `METRICS` serves
//!   Prometheus-style text with `tenant=` labels (`METRICS *` adds a
//!   cross-tenant `_all` aggregate); `TRACE TAIL n` drains the ring.
//!   Scrapes read the same atomics the hot path writes — they never
//!   block ingest. `docs/OBSERVABILITY.md` catalogs every series.
//!
//! # Wire protocol (v2)
//!
//! One request per line (ASCII, space-separated, `\n`-terminated), one
//! reply line per request. Replies start with `OK` or `ERR <message>`.
//! Floats use Rust's shortest-roundtrip formatting, so parsing a reply
//! recovers the bit-identical `f64` the server computed. The complete
//! reference — argument grammar, reply grammar, error lines — lives in
//! `docs/PROTOCOL.md` at the repository root.
//!
//! | Request                    | Reply                                                        |
//! |----------------------------|--------------------------------------------------------------|
//! | `INGEST u1 v1 [u2 v2 …]`   | `OK INGEST <n>` — n edges queued to the current tenant       |
//! | `INGEST <scope> u1 v1 …`   | `OK INGEST <n> tenants=<t>` — scope `*` or `a,b,…` fan-out   |
//! | `QUERY GLOBAL`             | `OK GLOBAL position=<p> tau=<τ̂> ci95=<lo>,<hi>` (`ci95=na` without η) |
//! | `QUERY LOCAL <v>`          | `OK LOCAL position=<p> node=<v> tau_v=<τ̂_v>`                |
//! | `TOPK <k>`                 | `OK TOPK position=<p> k=<n> <v1>=<τ̂1> … <vn>=<τ̂n>` (descending) |
//! | `TOPK <k> *`               | `OK TOPK ALL k=<n> <t1>/<v1>=<τ̂1> …` — merged across tenants |
//! | `STATS`                    | `OK STATS position= seq= checkpoints= engine= m= c= stored_edges= bytes= tracked_nodes= journal_bytes= journal_segments= replayed= dlq=` |
//! | `STATS *`                  | `OK STATS ALL tenants= position= stored_edges= bytes= checkpoints= tracked_nodes= journal_bytes= dlq=` |
//! | `JOURNAL STATS`            | `OK JOURNAL enabled= position= bytes= segments= replayed= dlq=` — current tenant's durability state |
//! | `FLUSH`                    | `OK FLUSH position=<p>` — barrier: everything queued is applied and republished |
//! | `AGGREGATE`                | `OK AGGREGATE position=<p> groups=<g> lines=<n>` + n lines of raw per-group counters — the shard tier's exchange verb |
//! | `CHECKPOINT`               | `OK CHECKPOINT position=<p>` — state durably on disk          |
//! | `TENANT CREATE <t> [k=v …]`| `OK TENANT CREATED <t>` — options: engine, m, c, seed, interval, memory_budget, quota |
//! | `TENANT LIST`              | `OK TENANTS n=<n> <t>=<pos>[:interval=<i>] …`                 |
//! | `TENANT DROP <t>`          | `OK TENANT DROPPED <t>` (`default` is protected)              |
//! | `USE <t>`                  | `OK USING <t>` — switches this connection's current tenant    |
//! | `HEALTH`                   | `OK HEALTH tenant= state=<ok\|degraded> queue= capacity= bytes= budget= journal_lag= dlq= sync= last_group=` |
//! | `DLQ REPLAY`               | `OK DLQ REPLAYED n=<drained> failed=<rejected again>`         |
//! | `METRICS`                  | `OK METRICS lines=<n>` + n exposition lines for the current tenant |
//! | `METRICS *`                | `OK METRICS lines=<n>` + n lines for every tenant plus `tenant="_all"` aggregates |
//! | `TRACE TAIL <n>`           | `OK TRACE lines=<k>` + k slow-op events (drains the ring)     |
//! | `SHUTDOWN`                 | `OK BYE` — server stops accepting and drains                  |
//!
//! Two `ERR` classes carry retry semantics: `ERR BUSY …` (ingest queue
//! full — transient, retry with backoff; the batch was not applied and
//! is **not** dead-lettered) and `ERR QUOTA …` (memory budget refusal —
//! durable, never retry; the line **is** dead-lettered for `DLQ
//! REPLAY`). Every other `ERR` is a grammar or state error.
//!
//! Self-loops are rejected (`ERR self-loop …`); duplicate stream edges
//! are accepted and handled by the estimator exactly like the batch
//! drivers (first store wins). Queries answer from the **latest
//! published snapshot**: after plain `INGEST` the estimate may trail
//! the queued stream by up to `snapshot_every` edges — send `FLUSH`
//! first when read-your-writes freshness is needed.
//!
//! # Quickstart
//!
//! ```
//! use rept_core::ReptConfig;
//! use rept_graph::edge::Edge;
//! use rept_serve::core::{ServeConfig, ServeCore};
//!
//! let cfg = ServeConfig::new(ReptConfig::new(2, 2).with_seed(7)).with_snapshot_every(2);
//! let core = ServeCore::start(cfg).unwrap();
//! core.ingest(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]).unwrap();
//! let position = core.flush();
//! assert_eq!(position, 3);
//! let snapshot = core.snapshot();
//! assert!(snapshot.global >= 0.0);
//! core.shutdown();
//! ```
//!
//! Multi-tenant, in process:
//!
//! ```
//! use rept_core::ReptConfig;
//! use rept_graph::edge::Edge;
//! use rept_serve::protocol::{Scope, TenantOptions};
//! use rept_serve::tenant::{RouterConfig, TenantRouter};
//! use rept_serve::ServeConfig;
//!
//! let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(7));
//! let router = TenantRouter::start(RouterConfig::new(base)).unwrap();
//! router.create("alpha", &TenantOptions { seed: Some(9), ..TenantOptions::default() }).unwrap();
//! let fed = router
//!     .ingest(&Scope::All, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
//!     .unwrap();
//! assert_eq!(fed, 2); // default + alpha
//! router.flush_all();
//! assert_eq!(router.tenant("alpha").unwrap().position(), 3);
//! router.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod dlq;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod tenant;

pub use crate::core::{Health, IngestError, LiveStats, QuotaPolicy, ServeConfig, ServeCore};
pub use client::{Client, ClientConfig, GlobalEstimate};
pub use dlq::DeadLetterQueue;
pub use journal::{Journal, SyncPolicy};
pub use metrics::{render_exposition, ServeMetrics, TenantScrape};
pub use server::Server;
pub use snapshot::{DurabilityStats, Published, Snapshot};
pub use tenant::{RouterConfig, RouterStats, TenantRouter};
