//! Per-tenant serving metrics and Prometheus-style text exposition.
//!
//! Every [`ServeCore`](crate::core::ServeCore) owns one [`ServeMetrics`]:
//! a fixed set of atomic counters, gauges and log₂-bucket histograms from
//! [`rept_metrics::registry`], plus a slow-op [`TraceRing`]. Recording is
//! lock-free and allocation-free; scraping reads the same atomics, so a
//! scrape can never block ingest.
//!
//! [`render_exposition`] turns one or more tenant scrapes into
//! Prometheus-style text: `# TYPE` headers, one sample per line,
//! `tenant="…"` labels, histograms as summaries with
//! `quantile="0.5|0.9|0.99|1"` rows plus `_sum`/`_count`. With
//! `include_aggregate`, counters and histograms are additionally folded
//! across tenants into `tenant="_all"` rows (exact at bucket granularity —
//! see [`Histogram::merge_from`]). Tenant names are restricted to
//! `[A-Za-z0-9_-]` by the router, so label values never need escaping.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use rept_metrics::registry::{Counter, Gauge, Histogram};
use rept_metrics::trace::TraceRing;

use crate::core::Health;

/// Query verbs with per-verb service-latency histograms, in exposition
/// order. `record_query` ignores verbs not in this list.
pub const QUERY_VERBS: &[&str] = &["global", "local", "topk", "stats", "journal", "health"];

/// The full metric set owned by one tenant's serving core.
///
/// All fields are plain atomics; writers and scrapers never contend on a
/// lock (the trace ring locks only for events at or above its threshold).
#[derive(Debug)]
pub struct ServeMetrics {
    /// Edge batches applied to the estimator.
    pub ingest_batches: Counter,
    /// Individual edges applied.
    pub ingest_edges: Counter,
    /// Batches rejected at the door with `BUSY` (queue full).
    pub busy_rejections: Counter,
    /// Batches rejected by the tenant quota (`QUOTA`).
    pub quota_rejections: Counter,
    /// Batches rejected by a journal append/sync failure.
    pub rejected_batches: Counter,
    /// Batches recorded to the dead-letter queue.
    pub dead_letters: Counter,
    /// Immutable snapshots published.
    pub snapshots_published: Counter,
    /// Checkpoints written.
    pub checkpoints_written: Counter,
    /// Total bytes of checkpoint files written.
    pub checkpoint_bytes: Counter,
    /// Journal records appended.
    pub journal_appends: Counter,
    /// Journal fsync (`sync_data`) calls.
    pub journal_fsyncs: Counter,
    /// Size, in batches, of the most recent group commit.
    pub last_group_commit: Gauge,
    /// Time an ingest batch waited in the control queue (µs).
    pub queue_wait_micros: Histogram,
    /// Time to apply one batch to the estimator (µs).
    pub apply_micros: Histogram,
    /// Time to build and write one journal record, excluding fsync (µs).
    pub journal_append_micros: Histogram,
    /// Journal fsync duration (µs).
    pub fsync_micros: Histogram,
    /// Group-commit sizes (batches per barrier sync).
    pub group_commit_batches: Histogram,
    /// Checkpoint write duration (µs).
    pub checkpoint_micros: Histogram,
    /// Snapshot publication duration (µs).
    pub publish_micros: Histogram,
    /// Slow-operation ring, drained by `TRACE TAIL`.
    pub trace: TraceRing,
    queries: Vec<Histogram>,
}

impl ServeMetrics {
    /// Create an empty metric set with a trace ring of `trace_capacity`
    /// events and the given slow-op threshold.
    pub fn new(trace_capacity: usize, slow_op_threshold: Duration) -> Self {
        ServeMetrics {
            ingest_batches: Counter::new(),
            ingest_edges: Counter::new(),
            busy_rejections: Counter::new(),
            quota_rejections: Counter::new(),
            rejected_batches: Counter::new(),
            dead_letters: Counter::new(),
            snapshots_published: Counter::new(),
            checkpoints_written: Counter::new(),
            checkpoint_bytes: Counter::new(),
            journal_appends: Counter::new(),
            journal_fsyncs: Counter::new(),
            last_group_commit: Gauge::new(),
            queue_wait_micros: Histogram::new(),
            apply_micros: Histogram::new(),
            journal_append_micros: Histogram::new(),
            fsync_micros: Histogram::new(),
            group_commit_batches: Histogram::new(),
            checkpoint_micros: Histogram::new(),
            publish_micros: Histogram::new(),
            trace: TraceRing::new(trace_capacity, slow_op_threshold),
            queries: QUERY_VERBS.iter().map(|_| Histogram::new()).collect(),
        }
    }

    /// The service-latency histogram for `verb`, if it is a known verb.
    pub fn query(&self, verb: &str) -> Option<&Histogram> {
        QUERY_VERBS
            .iter()
            .position(|v| *v == verb)
            .map(|i| &self.queries[i])
    }

    /// Record one query service time for `verb` (unknown verbs ignored).
    pub fn record_query(&self, verb: &str, took: Duration) {
        if let Some(h) = self.query(verb) {
            h.record_duration(took);
        }
    }
}

/// One tenant's scrape unit: its name, a live health reading, and a shared
/// handle to its metric set.
#[derive(Debug, Clone)]
pub struct TenantScrape {
    /// Tenant name, used verbatim as the `tenant=` label value.
    pub tenant: String,
    /// The tenant's configured execution engine, used verbatim as the
    /// `engine=` label value of `rept_tenant_info` (same source as the
    /// `engine=` field of `STATS`).
    pub engine: &'static str,
    /// Health reading taken at scrape time (gauge-backed, live).
    pub health: Health,
    /// The tenant's metric set.
    pub metrics: Arc<ServeMetrics>,
}

/// One exposition column: series name + accessor.
type CounterColumn = (&'static str, fn(&ServeMetrics) -> u64);
type GaugeColumn = (&'static str, fn(&TenantScrape) -> u64);
type HistogramColumn = (&'static str, fn(&ServeMetrics) -> &Histogram);

const COUNTERS: &[CounterColumn] = &[
    ("rept_ingest_batches_total", |m| m.ingest_batches.get()),
    ("rept_ingest_edges_total", |m| m.ingest_edges.get()),
    ("rept_busy_rejections_total", |m| m.busy_rejections.get()),
    ("rept_quota_rejections_total", |m| m.quota_rejections.get()),
    ("rept_rejected_batches_total", |m| m.rejected_batches.get()),
    ("rept_dead_letters_total", |m| m.dead_letters.get()),
    ("rept_snapshots_published_total", |m| {
        m.snapshots_published.get()
    }),
    ("rept_checkpoints_total", |m| m.checkpoints_written.get()),
    ("rept_checkpoint_bytes_total", |m| m.checkpoint_bytes.get()),
    ("rept_journal_appends_total", |m| m.journal_appends.get()),
    ("rept_journal_fsyncs_total", |m| m.journal_fsyncs.get()),
    ("rept_trace_events_total", |m| m.trace.recorded()),
    ("rept_trace_dropped_total", |m| m.trace.dropped()),
];

const GAUGES: &[GaugeColumn] = &[
    ("rept_queue_depth", |s| s.health.queue_depth),
    ("rept_stored_bytes", |s| s.health.stored_bytes),
    ("rept_journal_lag_bytes", |s| s.health.journal_lag_bytes),
    ("rept_dlq_depth", |s| s.health.dlq),
    ("rept_degraded", |s| u64::from(s.health.degraded)),
    ("rept_last_group_commit", |s| {
        s.metrics.last_group_commit.get()
    }),
];

const HISTOGRAMS: &[HistogramColumn] = &[
    ("rept_queue_wait_micros", |m| &m.queue_wait_micros),
    ("rept_apply_micros", |m| &m.apply_micros),
    ("rept_journal_append_micros", |m| &m.journal_append_micros),
    ("rept_fsync_micros", |m| &m.fsync_micros),
    ("rept_group_commit_batches", |m| &m.group_commit_batches),
    ("rept_checkpoint_micros", |m| &m.checkpoint_micros),
    ("rept_publish_micros", |m| &m.publish_micros),
];

fn write_summary(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    for (q, v) in [
        ("0.5", h.p50()),
        ("0.9", h.p90()),
        ("0.99", h.p99()),
        ("1", h.max()),
    ] {
        let _ = writeln!(out, "{name}{{{labels},quantile=\"{q}\"}} {v}");
    }
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum());
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
}

/// Render Prometheus-style text exposition for the given tenant scrapes.
///
/// With `include_aggregate`, every counter and histogram family gains
/// `tenant="_all"` rows holding the cross-tenant sum / bucket-exact merge.
/// Gauges describe a single tenant's instantaneous state and are never
/// aggregated. The returned string has one sample or `# TYPE` header per
/// line and no trailing blank line.
pub fn render_exposition(scrapes: &[TenantScrape], include_aggregate: bool) -> String {
    let mut out = String::new();
    let aggregate = include_aggregate && !scrapes.is_empty();
    // Info-style series carrying each tenant's engine label (constant 1,
    // joined onto the other series by `tenant=` — the Prometheus idiom
    // for string-valued metadata). Never aggregated: engines differ.
    let _ = writeln!(out, "# TYPE rept_tenant_info gauge");
    for s in scrapes {
        let _ = writeln!(
            out,
            "rept_tenant_info{{tenant=\"{}\",engine=\"{}\"}} 1",
            s.tenant, s.engine
        );
    }
    for (name, get) in COUNTERS {
        let _ = writeln!(out, "# TYPE {name} counter");
        let mut total = 0u64;
        for s in scrapes {
            let v = get(&s.metrics);
            total += v;
            let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {v}", s.tenant);
        }
        if aggregate {
            let _ = writeln!(out, "{name}{{tenant=\"_all\"}} {total}");
        }
    }
    for (name, get) in GAUGES {
        let _ = writeln!(out, "# TYPE {name} gauge");
        for s in scrapes {
            let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", s.tenant, get(s));
        }
    }
    for (name, get) in HISTOGRAMS {
        let _ = writeln!(out, "# TYPE {name} summary");
        let merged = Histogram::new();
        for s in scrapes {
            let h = get(&s.metrics);
            if aggregate {
                merged.merge_from(h);
            }
            write_summary(&mut out, name, &format!("tenant=\"{}\"", s.tenant), h);
        }
        if aggregate {
            write_summary(&mut out, name, "tenant=\"_all\"", &merged);
        }
    }
    let _ = writeln!(out, "# TYPE rept_query_micros summary");
    let merged: Vec<Histogram> = QUERY_VERBS.iter().map(|_| Histogram::new()).collect();
    for s in scrapes {
        for (i, verb) in QUERY_VERBS.iter().enumerate() {
            let h = s.metrics.query(verb).expect("verb table");
            if aggregate {
                merged[i].merge_from(h);
            }
            write_summary(
                &mut out,
                "rept_query_micros",
                &format!("tenant=\"{}\",verb=\"{verb}\"", s.tenant),
                h,
            );
        }
    }
    if aggregate {
        for (i, verb) in QUERY_VERBS.iter().enumerate() {
            write_summary(
                &mut out,
                "rept_query_micros",
                &format!("tenant=\"_all\",verb=\"{verb}\""),
                &merged[i],
            );
        }
    }
    while out.ends_with('\n') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(tenant: &str, edges: u64) -> TenantScrape {
        let m = ServeMetrics::new(16, Duration::from_millis(50));
        m.ingest_edges.add(edges);
        m.ingest_batches.inc();
        m.queue_wait_micros.record(edges);
        m.record_query("global", Duration::from_micros(7));
        TenantScrape {
            tenant: tenant.to_string(),
            engine: "fused-sorted",
            health: Health {
                degraded: false,
                queue_depth: 1,
                queue_capacity: 16,
                stored_bytes: 64,
                memory_budget: 0,
                journal_lag_bytes: 0,
                dlq: 0,
                sync: "per-record",
                last_group: 1,
            },
            metrics: Arc::new(m),
        }
    }

    #[test]
    fn exposition_labels_every_tenant() {
        let text = render_exposition(&[scrape("default", 10), scrape("alpha", 5)], false);
        assert!(text.contains("# TYPE rept_tenant_info gauge"));
        assert!(text.contains("rept_tenant_info{tenant=\"default\",engine=\"fused-sorted\"} 1"));
        assert!(text.contains("# TYPE rept_ingest_edges_total counter"));
        assert!(text.contains("rept_ingest_edges_total{tenant=\"default\"} 10"));
        assert!(text.contains("rept_ingest_edges_total{tenant=\"alpha\"} 5"));
        assert!(!text.contains("_all"), "no aggregate unless requested");
        assert!(text.contains("rept_queue_depth{tenant=\"default\"} 1"));
        assert!(
            text.contains("rept_query_micros{tenant=\"alpha\",verb=\"global\",quantile=\"1\"} 7")
        );
        assert!(!text.ends_with('\n'));
    }

    #[test]
    fn aggregate_sums_counters_and_merges_histograms() {
        let text = render_exposition(&[scrape("default", 10), scrape("alpha", 5)], true);
        assert!(text.contains("rept_ingest_edges_total{tenant=\"_all\"} 15"));
        assert!(text.contains("rept_queue_wait_micros_count{tenant=\"_all\"} 2"));
        assert!(text.contains("rept_queue_wait_micros_sum{tenant=\"_all\"} 15"));
        assert!(text.contains("rept_queue_wait_micros{tenant=\"_all\",quantile=\"1\"} 10"));
        assert!(
            !text.contains("rept_queue_depth{tenant=\"_all\"}"),
            "gauges are never aggregated"
        );
    }

    #[test]
    fn unknown_query_verb_is_ignored() {
        let m = ServeMetrics::new(4, Duration::ZERO);
        m.record_query("nonsense", Duration::from_micros(1));
        assert!(m.query("nonsense").is_none());
        assert_eq!(m.query("global").unwrap().count(), 0);
    }
}
