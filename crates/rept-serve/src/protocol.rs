//! The line-oriented wire protocol: command parsing and reply
//! formatting.
//!
//! Pure functions over strings — the TCP server and the client both go
//! through this module, and the unit tests exercise the grammar without
//! a socket. The full specification lives in the crate-level docs
//! ([`crate`]).
//!
//! Floats are formatted with Rust's shortest-roundtrip `Display`, so a
//! client parsing a reply recovers the **bit-identical** `f64` the
//! server computed — the serve smoke test's exactness assertions go
//! through the wire and still compare with `==`.

use rept_graph::edge::{Edge, NodeId};

use crate::snapshot::Snapshot;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `INGEST u1 v1 [u2 v2 …]` — queue edges for ingestion.
    Ingest(Vec<Edge>),
    /// `QUERY GLOBAL` — the global estimate with confidence interval.
    QueryGlobal,
    /// `QUERY LOCAL v` — one node's local estimate.
    QueryLocal(NodeId),
    /// `TOPK k` — the k largest local estimates.
    TopK(usize),
    /// `STATS` — server statistics.
    Stats,
    /// `FLUSH` — barrier: apply everything queued, republish, reply.
    Flush,
    /// `CHECKPOINT` — write a checkpoint, reply with its position.
    Checkpoint,
    /// `SHUTDOWN` — stop accepting connections and drain.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable description of the grammar violation (sent back as
/// an `ERR` reply).
pub fn parse(line: &str) -> Result<Command, String> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or("empty command")?;
    match verb {
        "INGEST" => {
            let mut edges = Vec::new();
            let rest: Vec<&str> = tokens.collect();
            if rest.is_empty() {
                return Err("INGEST needs at least one edge".into());
            }
            if !rest.len().is_multiple_of(2) {
                return Err("INGEST needs an even number of node ids".into());
            }
            for pair in rest.chunks(2) {
                let u: NodeId = pair[0]
                    .parse()
                    .map_err(|_| format!("bad node id {:?}", pair[0]))?;
                let v: NodeId = pair[1]
                    .parse()
                    .map_err(|_| format!("bad node id {:?}", pair[1]))?;
                let e = Edge::try_new(u, v).ok_or(format!("self-loop {u}-{v} rejected"))?;
                edges.push(e);
            }
            Ok(Command::Ingest(edges))
        }
        "QUERY" => match tokens.next() {
            Some("GLOBAL") => expect_end(tokens, Command::QueryGlobal),
            Some("LOCAL") => {
                let v = tokens.next().ok_or("QUERY LOCAL needs a node id")?;
                let v: NodeId = v.parse().map_err(|_| format!("bad node id {v:?}"))?;
                expect_end(tokens, Command::QueryLocal(v))
            }
            _ => Err("QUERY needs GLOBAL or LOCAL".into()),
        },
        "TOPK" => {
            let k = tokens.next().ok_or("TOPK needs a count")?;
            let k: usize = k.parse().map_err(|_| format!("bad count {k:?}"))?;
            expect_end(tokens, Command::TopK(k))
        }
        "STATS" => expect_end(tokens, Command::Stats),
        "FLUSH" => expect_end(tokens, Command::Flush),
        "CHECKPOINT" => expect_end(tokens, Command::Checkpoint),
        "SHUTDOWN" => expect_end(tokens, Command::Shutdown),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn expect_end<'a>(
    mut tokens: impl Iterator<Item = &'a str>,
    cmd: Command,
) -> Result<Command, String> {
    match tokens.next() {
        None => Ok(cmd),
        Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
    }
}

/// `OK GLOBAL …` reply for `QUERY GLOBAL`.
pub fn format_global(snap: &Snapshot) -> String {
    let ci = match snap.confidence95 {
        Some((lo, hi)) => format!("{lo},{hi}"),
        None => "na".into(),
    };
    format!(
        "OK GLOBAL position={} tau={} ci95={ci}",
        snap.position, snap.global
    )
}

/// `OK LOCAL …` reply for `QUERY LOCAL`.
pub fn format_local(snap: &Snapshot, v: NodeId) -> String {
    format!(
        "OK LOCAL position={} node={v} tau_v={}",
        snap.position,
        snap.local(v)
    )
}

/// `OK TOPK …` reply for `TOPK`.
pub fn format_top_k(snap: &Snapshot, k: usize) -> String {
    let mut out = format!(
        "OK TOPK position={} k={}",
        snap.position,
        snap.top_k.len().min(k)
    );
    for &(v, t) in snap.top_k.iter().take(k) {
        out.push_str(&format!(" {v}={t}"));
    }
    out
}

/// `OK STATS …` reply for `STATS`.
pub fn format_stats(snap: &Snapshot) -> String {
    format!(
        "OK STATS position={} seq={} checkpoints={} engine={} m={} c={} stored_edges={} \
         bytes={} tracked_nodes={}",
        snap.position,
        snap.seq,
        snap.checkpoints,
        snap.engine.name(),
        snap.m,
        snap.c,
        snap.stored_edges,
        snap.total_bytes,
        snap.locals.len(),
    )
}

/// Extracts the value of a `key=value` token from a reply line — the
/// client-side accessor for every `OK` payload.
pub fn reply_field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    reply
        .split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(
            parse("INGEST 1 2 3 4"),
            Ok(Command::Ingest(vec![Edge::new(1, 2), Edge::new(3, 4)]))
        );
        assert_eq!(parse("QUERY GLOBAL"), Ok(Command::QueryGlobal));
        assert_eq!(parse("QUERY LOCAL 17"), Ok(Command::QueryLocal(17)));
        assert_eq!(parse("TOPK 5"), Ok(Command::TopK(5)));
        assert_eq!(parse("STATS"), Ok(Command::Stats));
        assert_eq!(parse("FLUSH"), Ok(Command::Flush));
        assert_eq!(parse("CHECKPOINT"), Ok(Command::Checkpoint));
        assert_eq!(parse("SHUTDOWN"), Ok(Command::Shutdown));
        assert_eq!(parse("  QUERY   GLOBAL  "), Ok(Command::QueryGlobal));
    }

    #[test]
    fn rejects_bad_grammar() {
        assert!(parse("").is_err());
        assert!(parse("NOPE").is_err());
        assert!(parse("INGEST").is_err());
        assert!(parse("INGEST 1").is_err(), "odd id count");
        assert!(parse("INGEST 1 x").is_err(), "non-numeric id");
        assert!(parse("INGEST 3 3").is_err(), "self-loop");
        assert!(parse("QUERY").is_err());
        assert!(parse("QUERY LOCAL").is_err());
        assert!(parse("QUERY LOCAL 1 2").is_err(), "trailing token");
        assert!(parse("TOPK").is_err());
        assert!(parse("TOPK -3").is_err());
        assert!(parse("STATS now").is_err());
    }

    #[test]
    fn reply_fields_roundtrip() {
        let reply = "OK GLOBAL position=12 tau=3.5 ci95=1.25,5.75";
        assert_eq!(reply_field(reply, "position"), Some("12"));
        assert_eq!(reply_field(reply, "tau"), Some("3.5"));
        assert_eq!(reply_field(reply, "ci95"), Some("1.25,5.75"));
        assert_eq!(reply_field(reply, "missing"), None);
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        // The protocol's exactness guarantee: Display → parse is the
        // identity on f64 (shortest-roundtrip formatting).
        for x in [0.1f64, 1.0 / 3.0, 123456.789e-3, f64::MIN_POSITIVE] {
            let printed = format!("{x}");
            assert_eq!(printed.parse::<f64>().unwrap(), x);
        }
    }
}
