//! The line-oriented wire protocol (v2): command parsing and reply
//! formatting.
//!
//! Pure functions over strings — the TCP server and the client both go
//! through this module, and the unit tests exercise the grammar without
//! a socket. The full specification lives in `docs/PROTOCOL.md` at the
//! repository root (kept honest by a test that asserts every
//! [`Command`] variant is documented there) with a summary table in the
//! crate-level docs ([`crate`]).
//!
//! ## Versions
//!
//! * **v1** — single-estimator commands: `INGEST u v …`,
//!   `QUERY GLOBAL`, `QUERY LOCAL`, `TOPK`, `STATS`, `FLUSH`,
//!   `CHECKPOINT`, `SHUTDOWN`.
//! * **v2** (current) — adds tenant scoping on top, fully
//!   backwards-compatible: every v1 line parses exactly as before and
//!   acts on the connection's *current* tenant, which starts as
//!   `default`. New commands: `TENANT CREATE/LIST/DROP`, `USE <t>`, the
//!   scoped ingest form `INGEST <scope> u v …` (scope = `*` or a
//!   comma-separated tenant list — unambiguous because tenant names
//!   must start with a letter while node ids are numeric), the
//!   cross-tenant query forms `STATS *` and `TOPK <k> *`, and the
//!   durability introspection verb `JOURNAL STATS`.
//!
//! Floats are formatted with Rust's shortest-roundtrip `Display`, so a
//! client parsing a reply recovers the **bit-identical** `f64` the
//! server computed — the serve smoke test's exactness assertions go
//! through the wire and still compare with `==`.

use rept_core::GroupAggregate;
use rept_graph::edge::{Edge, NodeId};
use rept_hash::fx::FxHashMap;

use crate::core::{Health, LiveStats, QuotaPolicy};
use crate::snapshot::Snapshot;
use rept_metrics::trace::TraceEvent;

/// Maximum tenant name length accepted by [`validate_tenant_name`].
pub const MAX_TENANT_NAME: usize = 64;

/// The tenant every connection starts scoped to, and the one a v1
/// client (which never sends `USE`) talks to for its whole session.
pub const DEFAULT_TENANT: &str = "default";

/// Which tenants an `INGEST` line feeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// v1 form (`INGEST u v …`): the connection's current tenant.
    Current,
    /// `INGEST * u v …`: every tenant of the router.
    All,
    /// `INGEST a,b u v …`: the named tenants.
    Named(Vec<String>),
}

/// Per-tenant configuration overrides carried by `TENANT CREATE`.
/// Unset fields inherit the router's base configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantOptions {
    /// `engine=<per-worker|fused-hash|fused-sorted|fused-hybrid>`.
    pub engine: Option<rept_core::Engine>,
    /// `m=<partition size>`.
    pub m: Option<u64>,
    /// `c=<processor count>`.
    pub c: Option<u64>,
    /// `seed=<hash seed>` — mutually exclusive with `interval`.
    pub seed: Option<u64>,
    /// `interval=<index>` — derive the tenant's seed from the router's
    /// base seed through the `IntervalEstimator` sequence, making the
    /// tenant an independent sliding-window estimator.
    pub interval: Option<u64>,
    /// `memory_budget=<bytes>` — cap the tenant's adjacency bytes.
    /// Under the default [`QuotaPolicy::Shed`] the tenant runs the
    /// bounded-memory reservoir engine; under `reject`/`degrade` the
    /// full engine runs and writes past the budget are refused.
    pub memory_budget: Option<u64>,
    /// `quota=<shed|reject|degrade>` — what happens at the budget.
    /// Requires `memory_budget`.
    pub quota: Option<QuotaPolicy>,
}

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `INGEST [scope] u1 v1 [u2 v2 …]` — queue edges for ingestion.
    Ingest(Scope, Vec<Edge>),
    /// `QUERY GLOBAL` — the current tenant's global estimate with
    /// confidence interval.
    QueryGlobal,
    /// `QUERY LOCAL v` — one node's local estimate.
    QueryLocal(NodeId),
    /// `TOPK k` — the k largest local estimates of the current tenant.
    TopK(usize),
    /// `TOPK k *` — the k largest local estimates across all tenants,
    /// merged descending, entries labelled `tenant/node=value`.
    TopKAll(usize),
    /// `STATS` — current-tenant server statistics.
    Stats,
    /// `STATS *` — statistics aggregated over all tenants.
    StatsAll,
    /// `JOURNAL STATS` — the current tenant's durability state:
    /// journal enabled flag, bytes, segments, replayed edges, DLQ count.
    JournalStats,
    /// `FLUSH` — barrier: apply everything queued to the current
    /// tenant, republish, reply.
    Flush,
    /// `CHECKPOINT` — checkpoint the current tenant, reply with its
    /// position.
    Checkpoint,
    /// `SHUTDOWN` — stop accepting connections and drain.
    Shutdown,
    /// `TENANT CREATE name [key=value …]` — create a tenant.
    TenantCreate(String, TenantOptions),
    /// `TENANT LIST` — list tenants and their stream positions.
    TenantList,
    /// `TENANT DROP name` — shut a tenant down and remove it.
    TenantDrop(String),
    /// `USE name` — switch the connection's current tenant.
    Use(String),
    /// `HEALTH` — the current tenant's pressure gauges: degradation
    /// state, ingest-queue depth, stored bytes vs. budget, journal lag,
    /// DLQ depth.
    Health,
    /// `DLQ REPLAY` — drain the current tenant's dead-letter file and
    /// feed each captured line back through the ingest parser; lines
    /// that fail again are re-dead-lettered.
    DlqReplay,
    /// `METRICS` — Prometheus-style text exposition for the current
    /// tenant. The reply is multi-line, framed by `OK METRICS lines=<n>`
    /// followed by exactly `n` exposition lines.
    Metrics,
    /// `METRICS *` — exposition for every tenant, plus `tenant="_all"`
    /// rows aggregating counters (summed) and histograms (bucket-merged)
    /// across tenants.
    MetricsAll,
    /// `TRACE TAIL n` — drain the current tenant's slow-op trace ring:
    /// the newest `n` events, oldest first, framed like `METRICS`.
    TraceTail(usize),
    /// `AGGREGATE` — the aggregate-exchange verb the shard tier is
    /// built on: a barrier (everything queued is applied first), then
    /// the current tenant's raw per-group counters
    /// ([`rept_core::GroupAggregate`]) over the wire, framed like
    /// `METRICS` by `OK AGGREGATE position=<p> groups=<g> lines=<n>`.
    /// All counters are integers, so the exchange is exact — a
    /// coordinator recombines shard replies through
    /// `Rept::finalize_groups` into the bit-identical single-process
    /// estimate.
    Aggregate,
}

/// One documented wire form per [`Command`] variant, in declaration
/// order: `(variant name, canonical wire form)`. `docs/PROTOCOL.md` is
/// kept honest by a test asserting every entry here appears in the doc,
/// and that this table covers every enum variant in the source.
pub const COMMAND_FORMS: &[(&str, &str)] = &[
    ("Ingest", "INGEST"),
    ("QueryGlobal", "QUERY GLOBAL"),
    ("QueryLocal", "QUERY LOCAL"),
    ("TopK", "TOPK"),
    ("TopKAll", "TOPK <k> *"),
    ("Stats", "STATS"),
    ("StatsAll", "STATS *"),
    ("JournalStats", "JOURNAL STATS"),
    ("Flush", "FLUSH"),
    ("Checkpoint", "CHECKPOINT"),
    ("Shutdown", "SHUTDOWN"),
    ("TenantCreate", "TENANT CREATE"),
    ("TenantList", "TENANT LIST"),
    ("TenantDrop", "TENANT DROP"),
    ("Use", "USE"),
    ("Health", "HEALTH"),
    ("DlqReplay", "DLQ REPLAY"),
    ("Metrics", "METRICS"),
    ("MetricsAll", "METRICS *"),
    ("TraceTail", "TRACE TAIL"),
    ("Aggregate", "AGGREGATE"),
];

/// Checks a tenant name: starts with an ASCII letter, continues with
/// letters, digits, `_` or `-`, at most [`MAX_TENANT_NAME`] bytes. The
/// leading letter is what disambiguates the scoped `INGEST` form from
/// v1's numeric node ids, and the character set keeps names safe as
/// checkpoint directory names.
///
/// # Errors
///
/// A description of the violation.
pub fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("tenant name must not be empty".into());
    }
    if name.len() > MAX_TENANT_NAME {
        return Err(format!("tenant name longer than {MAX_TENANT_NAME} bytes"));
    }
    let mut chars = name.chars();
    if !chars.next().is_some_and(|c| c.is_ascii_alphabetic()) {
        return Err(format!("tenant name {name:?} must start with a letter"));
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
        return Err(format!(
            "tenant name {name:?} may only contain letters, digits, '_' and '-'"
        ));
    }
    Ok(())
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable description of the grammar violation (sent back as
/// an `ERR` reply).
pub fn parse(line: &str) -> Result<Command, String> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or("empty command")?;
    match verb {
        "INGEST" => {
            let mut rest: Vec<&str> = tokens.collect();
            if rest.is_empty() {
                return Err("INGEST needs at least one edge".into());
            }
            // v2 scoped form: the leading token is a scope only when it
            // *could* be one — `*` or something starting with a letter
            // (tenant names must). Anything else (digits, and oddities
            // like `+1` that u32 parsing accepts) flows through the v1
            // node-id path unchanged, preserving exact v1 behaviour.
            let scope = if rest[0] == "*" || rest[0].as_bytes()[0].is_ascii_alphabetic() {
                let scope_tok = rest.remove(0);
                parse_scope(scope_tok)?
            } else {
                Scope::Current
            };
            if rest.is_empty() {
                return Err("INGEST needs at least one edge".into());
            }
            if !rest.len().is_multiple_of(2) {
                return Err("INGEST needs an even number of node ids".into());
            }
            let mut edges = Vec::with_capacity(rest.len() / 2);
            for pair in rest.chunks(2) {
                let u: NodeId = pair[0]
                    .parse()
                    .map_err(|_| format!("bad node id {:?}", pair[0]))?;
                let v: NodeId = pair[1]
                    .parse()
                    .map_err(|_| format!("bad node id {:?}", pair[1]))?;
                let e = Edge::try_new(u, v).ok_or(format!("self-loop {u}-{v} rejected"))?;
                edges.push(e);
            }
            Ok(Command::Ingest(scope, edges))
        }
        "QUERY" => match tokens.next() {
            Some("GLOBAL") => expect_end(tokens, Command::QueryGlobal),
            Some("LOCAL") => {
                let v = tokens.next().ok_or("QUERY LOCAL needs a node id")?;
                let v: NodeId = v.parse().map_err(|_| format!("bad node id {v:?}"))?;
                expect_end(tokens, Command::QueryLocal(v))
            }
            _ => Err("QUERY needs GLOBAL or LOCAL".into()),
        },
        "TOPK" => {
            let k = tokens.next().ok_or("TOPK needs a count")?;
            let k: usize = k.parse().map_err(|_| format!("bad count {k:?}"))?;
            match tokens.next() {
                None => Ok(Command::TopK(k)),
                Some("*") => expect_end(tokens, Command::TopKAll(k)),
                Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
            }
        }
        "STATS" => match tokens.next() {
            None => Ok(Command::Stats),
            Some("*") => expect_end(tokens, Command::StatsAll),
            Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
        },
        "JOURNAL" => match tokens.next() {
            Some("STATS") => expect_end(tokens, Command::JournalStats),
            _ => Err("JOURNAL needs STATS".into()),
        },
        "FLUSH" => expect_end(tokens, Command::Flush),
        "CHECKPOINT" => expect_end(tokens, Command::Checkpoint),
        "SHUTDOWN" => expect_end(tokens, Command::Shutdown),
        "TENANT" => match tokens.next() {
            Some("CREATE") => {
                let name = tokens.next().ok_or("TENANT CREATE needs a name")?;
                validate_tenant_name(name)?;
                let opts = parse_tenant_options(tokens)?;
                Ok(Command::TenantCreate(name.to_string(), opts))
            }
            Some("LIST") => expect_end(tokens, Command::TenantList),
            Some("DROP") => {
                let name = tokens.next().ok_or("TENANT DROP needs a name")?;
                validate_tenant_name(name)?;
                expect_end(tokens, Command::TenantDrop(name.to_string()))
            }
            _ => Err("TENANT needs CREATE, LIST or DROP".into()),
        },
        "USE" => {
            let name = tokens.next().ok_or("USE needs a tenant name")?;
            validate_tenant_name(name)?;
            expect_end(tokens, Command::Use(name.to_string()))
        }
        "HEALTH" => expect_end(tokens, Command::Health),
        "DLQ" => match tokens.next() {
            Some("REPLAY") => expect_end(tokens, Command::DlqReplay),
            _ => Err("DLQ needs REPLAY".into()),
        },
        "METRICS" => match tokens.next() {
            None => Ok(Command::Metrics),
            Some("*") => expect_end(tokens, Command::MetricsAll),
            Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
        },
        "TRACE" => match tokens.next() {
            Some("TAIL") => {
                let n = tokens.next().ok_or("TRACE TAIL needs a count")?;
                let n: usize = n.parse().map_err(|_| format!("bad count {n:?}"))?;
                expect_end(tokens, Command::TraceTail(n))
            }
            _ => Err("TRACE needs TAIL <n>".into()),
        },
        "AGGREGATE" => expect_end(tokens, Command::Aggregate),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Parses an ingest scope token: `*` or a comma-separated tenant list.
/// Repeated names are rejected — a duplicate would silently apply every
/// edge twice to that tenant, permanently diverging its estimate.
fn parse_scope(tok: &str) -> Result<Scope, String> {
    if tok == "*" {
        return Ok(Scope::All);
    }
    let mut names: Vec<String> = Vec::new();
    for name in tok.split(',') {
        validate_tenant_name(name)?;
        if names.iter().any(|n| n == name) {
            return Err(format!("duplicate tenant {name:?} in scope"));
        }
        names.push(name.to_string());
    }
    Ok(Scope::Named(names))
}

/// Parses `key=value` tenant-creation options.
fn parse_tenant_options<'a>(
    tokens: impl Iterator<Item = &'a str>,
) -> Result<TenantOptions, String> {
    let mut opts = TenantOptions::default();
    for tok in tokens {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
        match key {
            "engine" => {
                opts.engine = Some(
                    rept_core::Engine::from_name(value)
                        .ok_or_else(|| format!("unknown engine {value:?}"))?,
                );
            }
            "m" => opts.m = Some(parse_num(key, value)?),
            "c" => opts.c = Some(parse_num(key, value)?),
            "seed" => opts.seed = Some(parse_num(key, value)?),
            "interval" => opts.interval = Some(parse_num(key, value)?),
            "memory_budget" => opts.memory_budget = Some(parse_num(key, value)?),
            "quota" => {
                opts.quota = Some(
                    QuotaPolicy::from_name(value)
                        .ok_or_else(|| format!("unknown quota policy {value:?}"))?,
                );
            }
            other => return Err(format!("unknown tenant option {other:?}")),
        }
    }
    if opts.seed.is_some() && opts.interval.is_some() {
        return Err("seed and interval are mutually exclusive (interval derives the seed)".into());
    }
    if opts.quota.is_some() && opts.memory_budget.is_none() {
        return Err("quota policy requires a memory_budget to enforce".into());
    }
    Ok(opts)
}

fn parse_num(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("bad value for {key}: {value:?}"))
}

fn expect_end<'a>(
    mut tokens: impl Iterator<Item = &'a str>,
    cmd: Command,
) -> Result<Command, String> {
    match tokens.next() {
        None => Ok(cmd),
        Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
    }
}

/// `OK GLOBAL …` reply for `QUERY GLOBAL`.
pub fn format_global(snap: &Snapshot) -> String {
    let ci = match snap.confidence95 {
        Some((lo, hi)) => format!("{lo},{hi}"),
        None => "na".into(),
    };
    format!(
        "OK GLOBAL position={} tau={} ci95={ci}",
        snap.position, snap.global
    )
}

/// `OK LOCAL …` reply for `QUERY LOCAL`.
pub fn format_local(snap: &Snapshot, v: NodeId) -> String {
    format!(
        "OK LOCAL position={} node={v} tau_v={}",
        snap.position,
        snap.local(v)
    )
}

/// `OK TOPK …` reply for `TOPK`.
pub fn format_top_k(snap: &Snapshot, k: usize) -> String {
    let mut out = format!(
        "OK TOPK position={} k={}",
        snap.position,
        snap.top_k.len().min(k)
    );
    for &(v, t) in snap.top_k.iter().take(k) {
        out.push_str(&format!(" {v}={t}"));
    }
    out
}

/// `OK TOPK ALL …` reply for `TOPK <k> *`: entries are
/// `tenant/node=value`, merged across tenants, descending.
pub fn format_top_k_all(entries: &[(String, NodeId, f64)], k: usize) -> String {
    let mut out = format!("OK TOPK ALL k={}", entries.len().min(k));
    for (tenant, v, t) in entries.iter().take(k) {
        out.push_str(&format!(" {tenant}/{v}={t}"));
    }
    out
}

/// `OK STATS ALL …` reply for `STATS *`.
pub fn format_stats_all(stats: &crate::tenant::RouterStats) -> String {
    format!(
        "OK STATS ALL tenants={} position={} stored_edges={} bytes={} checkpoints={} \
         tracked_nodes={} journal_bytes={} dlq={}",
        stats.tenants,
        stats.position,
        stats.stored_edges,
        stats.bytes,
        stats.checkpoints,
        stats.tracked_nodes,
        stats.journal_bytes,
        stats.dlq,
    )
}

/// `OK STATS …` reply for `STATS`. Estimator fields (position, counts,
/// bytes) come from the published snapshot; the journal and DLQ fields
/// come from `live` — gauge-backed readings, so an idle tenant reports
/// its current durability state rather than the last publication's.
pub fn format_stats(snap: &Snapshot, live: &LiveStats) -> String {
    format!(
        "OK STATS position={} seq={} checkpoints={} engine={} m={} c={} stored_edges={} \
         bytes={} tracked_nodes={} journal_bytes={} journal_segments={} replayed={} dlq={}",
        snap.position,
        snap.seq,
        snap.checkpoints,
        snap.engine.name(),
        snap.m,
        snap.c,
        snap.stored_edges,
        snap.total_bytes,
        snap.locals.len(),
        live.journal_bytes,
        live.journal_segments,
        snap.durability.replayed,
        live.dlq,
    )
}

/// `OK JOURNAL …` reply for `JOURNAL STATS` — the durability state of
/// the current tenant. Bytes, segments and the DLQ count are live
/// gauge readings (see [`format_stats`]).
pub fn format_journal_stats(snap: &Snapshot, live: &LiveStats) -> String {
    format!(
        "OK JOURNAL enabled={} position={} bytes={} segments={} replayed={} dlq={}",
        u8::from(snap.durability.enabled),
        snap.position,
        live.journal_bytes,
        live.journal_segments,
        snap.durability.replayed,
        live.dlq,
    )
}

/// `OK HEALTH …` reply for `HEALTH` — the current tenant's pressure
/// gauges. `budget=0` means unlimited; `state` is `ok` or `degraded`;
/// `sync` is the journal fsync policy (`none` without a journal) and
/// `last_group` the size of the most recent group commit in batches.
pub fn format_health(tenant: &str, h: &Health) -> String {
    format!(
        "OK HEALTH tenant={tenant} state={} queue={} capacity={} bytes={} budget={} \
         journal_lag={} dlq={} sync={} last_group={}",
        if h.degraded { "degraded" } else { "ok" },
        h.queue_depth,
        h.queue_capacity,
        h.stored_bytes,
        h.memory_budget,
        h.journal_lag_bytes,
        h.dlq,
        h.sync,
        h.last_group,
    )
}

/// `OK METRICS lines=<n>` framing for a `METRICS` reply: the header
/// line followed by the exposition `body` verbatim. `n` counts the
/// body's lines so a client knows exactly how many lines to read after
/// the header (0 for an empty body).
pub fn format_metrics(body: &str) -> String {
    if body.is_empty() {
        return "OK METRICS lines=0".to_string();
    }
    let lines = body.lines().count();
    format!("OK METRICS lines={lines}\n{body}")
}

/// `OK TRACE lines=<n>` reply for `TRACE TAIL`: the header followed by
/// one line per drained slow-op event, oldest first —
/// `at_us=<t> op=<name> micros=<d> [detail]`.
pub fn format_trace(events: &[TraceEvent]) -> String {
    let mut out = format!("OK TRACE lines={}", events.len());
    for e in events {
        out.push_str(&format!(
            "\nat_us={} op={} micros={}",
            e.at_micros, e.op, e.micros
        ));
        if !e.detail.is_empty() {
            out.push(' ');
            out.push_str(&e.detail);
        }
    }
    out
}

/// `OK DLQ REPLAYED …` reply for `DLQ REPLAY`: `n` lines drained from
/// the dead-letter file, of which `failed` were rejected again (and
/// re-captured).
pub fn format_dlq_replayed(n: u64, failed: u64) -> String {
    format!("OK DLQ REPLAYED n={n} failed={failed}")
}

/// `OK AGGREGATE position=<p> groups=<g> lines=<n>` reply for
/// `AGGREGATE`: the header followed by exactly three lines per group —
///
/// ```text
/// G start=<s> bytes=<b> eta=<e> tau=<t0,t1,…> stored=<s0,s1,…>
/// TV none | TV <node>:<count> …
/// EV none | EV <node>:<count> …
/// ```
///
/// Every field is an integer, so parsing a reply recovers the exact
/// [`GroupAggregate`]s the server held. The per-node maps are emitted
/// sorted by node id, making the reply deterministic (the maps
/// themselves iterate in hash order).
pub fn format_aggregate(position: u64, groups: &[GroupAggregate]) -> String {
    let csv = |it: &mut dyn Iterator<Item = u64>| {
        let mut s = String::new();
        for (i, x) in it.enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&x.to_string());
        }
        s
    };
    let map_line = |tag: &str, map: Option<&FxHashMap<NodeId, u64>>| match map {
        None => format!("\n{tag} none"),
        Some(m) => {
            let mut entries: Vec<(NodeId, u64)> = m.iter().map(|(&v, &t)| (v, t)).collect();
            entries.sort_unstable();
            let mut line = format!("\n{tag}");
            for (v, t) in entries {
                line.push_str(&format!(" {v}:{t}"));
            }
            line
        }
    };
    let mut out = format!(
        "OK AGGREGATE position={position} groups={} lines={}",
        groups.len(),
        groups.len() * 3
    );
    for g in groups {
        out.push_str(&format!(
            "\nG start={} bytes={} eta={} tau={} stored={}",
            g.start,
            g.bytes,
            g.eta_total,
            csv(&mut g.tau.iter().copied()),
            csv(&mut g.stored.iter().map(|&s| s as u64)),
        ));
        out.push_str(&map_line("TV", g.tau_v.as_ref()));
        out.push_str(&map_line("EV", g.eta_v.as_ref()));
    }
    out
}

/// Parses an `AGGREGATE` reply — the client half of
/// [`format_aggregate`]. `header` is the `OK AGGREGATE …` line, `body`
/// the `lines=<n>` lines that followed it.
///
/// # Errors
///
/// A description of the framing or field violation.
pub fn parse_aggregate_reply(
    header: &str,
    body: &[String],
) -> Result<(u64, Vec<GroupAggregate>), String> {
    let field = |key: &str| -> Result<u64, String> {
        reply_field(header, key)
            .ok_or_else(|| format!("AGGREGATE header missing {key}="))?
            .parse::<u64>()
            .map_err(|_| format!("bad {key} in AGGREGATE header"))
    };
    let position = field("position")?;
    let n_groups = field("groups")? as usize;
    if body.len() != n_groups * 3 {
        return Err(format!(
            "AGGREGATE body has {} lines, expected {}",
            body.len(),
            n_groups * 3
        ));
    }
    let parse_csv = |s: &str| -> Result<Vec<u64>, String> {
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split(',')
            .map(|t| t.parse::<u64>().map_err(|_| format!("bad counter {t:?}")))
            .collect()
    };
    let parse_map = |line: &str, tag: &str| -> Result<Option<FxHashMap<NodeId, u64>>, String> {
        let rest = line
            .strip_prefix(tag)
            .ok_or_else(|| format!("expected {tag} line, got {line:?}"))?;
        let rest = rest.trim_start();
        if rest == "none" {
            return Ok(None);
        }
        let mut map = FxHashMap::default();
        for tok in rest.split_ascii_whitespace() {
            let (v, t) = tok
                .split_once(':')
                .ok_or_else(|| format!("bad {tag} entry {tok:?}"))?;
            let v: NodeId = v.parse().map_err(|_| format!("bad node id {v:?}"))?;
            let t: u64 = t.parse().map_err(|_| format!("bad count {t:?}"))?;
            map.insert(v, t);
        }
        Ok(Some(map))
    };
    let mut groups = Vec::with_capacity(n_groups);
    for chunk in body.chunks(3) {
        let g = &chunk[0];
        if !g.starts_with("G ") {
            return Err(format!("expected G line, got {g:?}"));
        }
        let gfield = |key: &str| -> Result<u64, String> {
            reply_field(g, key)
                .ok_or_else(|| format!("G line missing {key}="))?
                .parse::<u64>()
                .map_err(|_| format!("bad {key} in G line"))
        };
        let tau = parse_csv(reply_field(g, "tau").ok_or("G line missing tau=")?)?;
        let stored = parse_csv(reply_field(g, "stored").ok_or("G line missing stored=")?)?;
        if tau.len() != stored.len() {
            return Err("tau and stored lengths differ".into());
        }
        groups.push(GroupAggregate {
            start: gfield("start")? as usize,
            tau,
            stored: stored.into_iter().map(|s| s as usize).collect(),
            bytes: gfield("bytes")? as usize,
            eta_total: gfield("eta")?,
            tau_v: parse_map(&chunk[1], "TV")?,
            eta_v: parse_map(&chunk[2], "EV")?,
        });
    }
    Ok((position, groups))
}

/// Extracts the value of a `key=value` token from a reply line — the
/// client-side accessor for every `OK` payload.
pub fn reply_field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    reply
        .split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rept_core::Engine;

    #[test]
    fn parses_every_v1_verb() {
        assert_eq!(
            parse("INGEST 1 2 3 4"),
            Ok(Command::Ingest(
                Scope::Current,
                vec![Edge::new(1, 2), Edge::new(3, 4)]
            ))
        );
        assert_eq!(parse("QUERY GLOBAL"), Ok(Command::QueryGlobal));
        assert_eq!(parse("QUERY LOCAL 17"), Ok(Command::QueryLocal(17)));
        assert_eq!(parse("TOPK 5"), Ok(Command::TopK(5)));
        assert_eq!(parse("STATS"), Ok(Command::Stats));
        assert_eq!(parse("FLUSH"), Ok(Command::Flush));
        assert_eq!(parse("CHECKPOINT"), Ok(Command::Checkpoint));
        assert_eq!(parse("SHUTDOWN"), Ok(Command::Shutdown));
        assert_eq!(parse("  QUERY   GLOBAL  "), Ok(Command::QueryGlobal));
    }

    #[test]
    fn parses_tenant_verbs() {
        assert_eq!(
            parse("TENANT CREATE alpha"),
            Ok(Command::TenantCreate(
                "alpha".into(),
                TenantOptions::default()
            ))
        );
        assert_eq!(
            parse("TENANT CREATE w7 engine=per-worker m=8 c=16 seed=3"),
            Ok(Command::TenantCreate(
                "w7".into(),
                TenantOptions {
                    engine: Some(Engine::PerWorker),
                    m: Some(8),
                    c: Some(16),
                    seed: Some(3),
                    ..TenantOptions::default()
                }
            ))
        );
        assert_eq!(
            parse("TENANT CREATE win interval=4"),
            Ok(Command::TenantCreate(
                "win".into(),
                TenantOptions {
                    interval: Some(4),
                    ..TenantOptions::default()
                }
            ))
        );
        assert_eq!(parse("TENANT LIST"), Ok(Command::TenantList));
        assert_eq!(
            parse("TENANT DROP alpha"),
            Ok(Command::TenantDrop("alpha".into()))
        );
        assert_eq!(parse("USE alpha"), Ok(Command::Use("alpha".into())));
    }

    #[test]
    fn parses_scoped_ingest_and_cross_tenant_queries() {
        assert_eq!(
            parse("INGEST * 1 2"),
            Ok(Command::Ingest(Scope::All, vec![Edge::new(1, 2)]))
        );
        assert_eq!(
            parse("INGEST alpha,beta 1 2"),
            Ok(Command::Ingest(
                Scope::Named(vec!["alpha".into(), "beta".into()]),
                vec![Edge::new(1, 2)]
            ))
        );
        // v1 node-id oddities that u32 parsing accepts must not be
        // mistaken for scopes.
        assert_eq!(
            parse("INGEST +1 2"),
            Ok(Command::Ingest(Scope::Current, vec![Edge::new(1, 2)]))
        );
        assert!(
            parse("INGEST alpha,alpha 1 2").is_err(),
            "duplicate scope names double-apply edges"
        );
        assert_eq!(parse("TOPK 5 *"), Ok(Command::TopKAll(5)));
        assert_eq!(parse("STATS *"), Ok(Command::StatsAll));
    }

    #[test]
    fn rejects_bad_grammar() {
        assert!(parse("").is_err());
        assert!(parse("NOPE").is_err());
        assert!(parse("INGEST").is_err());
        assert!(parse("INGEST 1").is_err(), "odd id count");
        assert!(parse("INGEST 1 x").is_err(), "non-numeric id");
        assert!(parse("INGEST 3 3").is_err(), "self-loop");
        assert!(parse("INGEST *").is_err(), "scope without edges");
        assert!(parse("INGEST alpha 1").is_err(), "scoped odd id count");
        assert!(parse("QUERY").is_err());
        assert!(parse("QUERY LOCAL").is_err());
        assert!(parse("QUERY LOCAL 1 2").is_err(), "trailing token");
        assert!(parse("TOPK").is_err());
        assert!(parse("TOPK -3").is_err());
        assert!(parse("TOPK 3 * x").is_err(), "trailing token after *");
        assert!(parse("STATS now").is_err());
        assert!(parse("TENANT").is_err());
        assert!(parse("TENANT CREATE").is_err());
        assert!(parse("TENANT CREATE 9lives").is_err(), "leading digit");
        assert!(parse("TENANT CREATE a/b").is_err(), "bad character");
        assert!(
            parse("TENANT CREATE a seed=1 interval=2").is_err(),
            "seed and interval are exclusive"
        );
        assert!(parse("TENANT CREATE a engine=warp").is_err());
        assert!(parse("TENANT CREATE a m=").is_err());
        assert!(parse("TENANT CREATE a novalue").is_err());
        assert!(parse("TENANT DROP").is_err());
        assert!(parse("USE").is_err());
        assert!(parse("USE two words").is_err());
    }

    #[test]
    fn tenant_name_validation() {
        assert!(validate_tenant_name("alpha").is_ok());
        assert!(validate_tenant_name("a1_b-2").is_ok());
        assert!(validate_tenant_name("").is_err());
        assert!(validate_tenant_name("1abc").is_err());
        assert!(validate_tenant_name("*").is_err());
        assert!(validate_tenant_name("a,b").is_err());
        assert!(validate_tenant_name(&"x".repeat(MAX_TENANT_NAME + 1)).is_err());
    }

    #[test]
    fn command_forms_cover_every_variant() {
        // One entry per variant, in declaration order — the docs test
        // leans on this table, so it must stay complete.
        let variants = [
            "Ingest",
            "QueryGlobal",
            "QueryLocal",
            "TopK",
            "TopKAll",
            "Stats",
            "StatsAll",
            "JournalStats",
            "Flush",
            "Checkpoint",
            "Shutdown",
            "TenantCreate",
            "TenantList",
            "TenantDrop",
            "Use",
            "Health",
            "DlqReplay",
            "Metrics",
            "MetricsAll",
            "TraceTail",
            "Aggregate",
        ];
        assert_eq!(
            COMMAND_FORMS.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            variants
        );
    }

    #[test]
    fn reply_fields_roundtrip() {
        let reply = "OK GLOBAL position=12 tau=3.5 ci95=1.25,5.75";
        assert_eq!(reply_field(reply, "position"), Some("12"));
        assert_eq!(reply_field(reply, "tau"), Some("3.5"));
        assert_eq!(reply_field(reply, "ci95"), Some("1.25,5.75"));
        assert_eq!(reply_field(reply, "missing"), None);
    }

    #[test]
    fn stats_all_formatting() {
        let stats = crate::tenant::RouterStats {
            tenants: 2,
            position: 30,
            stored_edges: 12,
            bytes: 512,
            checkpoints: 3,
            tracked_nodes: 7,
            journal_bytes: 96,
            dlq: 1,
        };
        assert_eq!(
            format_stats_all(&stats),
            "OK STATS ALL tenants=2 position=30 stored_edges=12 bytes=512 checkpoints=3 \
             tracked_nodes=7 journal_bytes=96 dlq=1"
        );
    }

    #[test]
    fn parses_journal_stats() {
        assert_eq!(parse("JOURNAL STATS"), Ok(Command::JournalStats));
        assert!(parse("JOURNAL").is_err());
        assert!(parse("JOURNAL STATS x").is_err(), "trailing token");
    }

    #[test]
    fn parses_overload_verbs_and_options() {
        assert_eq!(parse("HEALTH"), Ok(Command::Health));
        assert!(parse("HEALTH x").is_err(), "trailing token");
        assert_eq!(parse("DLQ REPLAY"), Ok(Command::DlqReplay));
        assert!(parse("DLQ").is_err());
        assert!(parse("DLQ REPLAY now").is_err(), "trailing token");
        assert_eq!(
            parse("TENANT CREATE tiny memory_budget=4096 quota=reject"),
            Ok(Command::TenantCreate(
                "tiny".into(),
                TenantOptions {
                    memory_budget: Some(4096),
                    quota: Some(QuotaPolicy::Reject),
                    ..TenantOptions::default()
                }
            ))
        );
        assert_eq!(
            parse("TENANT CREATE tiny memory_budget=4096"),
            Ok(Command::TenantCreate(
                "tiny".into(),
                TenantOptions {
                    memory_budget: Some(4096),
                    ..TenantOptions::default()
                }
            )),
            "budget without quota defaults to shed"
        );
        assert!(
            parse("TENANT CREATE tiny quota=reject").is_err(),
            "quota without a budget enforces nothing"
        );
        assert!(parse("TENANT CREATE tiny memory_budget=4096 quota=panic").is_err());
        assert!(parse("TENANT CREATE tiny memory_budget=lots").is_err());
    }

    #[test]
    fn health_formatting() {
        let h = Health {
            degraded: false,
            queue_depth: 3,
            queue_capacity: 16,
            stored_bytes: 1024,
            memory_budget: 4096,
            journal_lag_bytes: 88,
            dlq: 2,
            sync: "per-record",
            last_group: 4,
        };
        assert_eq!(
            format_health("alpha", &h),
            "OK HEALTH tenant=alpha state=ok queue=3 capacity=16 bytes=1024 budget=4096 \
             journal_lag=88 dlq=2 sync=per-record last_group=4"
        );
        let degraded = Health {
            degraded: true,
            ..h
        };
        assert!(format_health("alpha", &degraded).contains("state=degraded"));
        assert_eq!(format_dlq_replayed(5, 2), "OK DLQ REPLAYED n=5 failed=2");
    }

    #[test]
    fn parses_observability_verbs() {
        assert_eq!(parse("METRICS"), Ok(Command::Metrics));
        assert_eq!(parse("METRICS *"), Ok(Command::MetricsAll));
        assert!(parse("METRICS alpha").is_err(), "no tenant argument form");
        assert!(parse("METRICS * x").is_err(), "trailing token");
        assert_eq!(parse("TRACE TAIL 10"), Ok(Command::TraceTail(10)));
        assert_eq!(parse("TRACE TAIL 0"), Ok(Command::TraceTail(0)));
        assert!(parse("TRACE").is_err(), "TAIL required");
        assert!(parse("TRACE TAIL").is_err(), "count required");
        assert!(parse("TRACE TAIL many").is_err(), "numeric count");
        assert!(parse("TRACE TAIL 5 x").is_err(), "trailing token");
    }

    #[test]
    fn metrics_and_trace_framing() {
        assert_eq!(format_metrics(""), "OK METRICS lines=0");
        assert_eq!(format_metrics("a 1\nb 2"), "OK METRICS lines=2\na 1\nb 2");
        assert_eq!(format_trace(&[]), "OK TRACE lines=0");
        let events = vec![
            TraceEvent {
                at_micros: 10,
                op: "fsync",
                micros: 900,
                detail: String::new(),
            },
            TraceEvent {
                at_micros: 25,
                op: "checkpoint",
                micros: 1500,
                detail: "position=64 bytes=2048".into(),
            },
        ];
        assert_eq!(
            format_trace(&events),
            "OK TRACE lines=2\nat_us=10 op=fsync micros=900\n\
             at_us=25 op=checkpoint micros=1500 position=64 bytes=2048"
        );
    }

    #[test]
    fn stats_formatting_uses_live_durability() {
        let cfg = rept_core::ReptConfig::new(2, 2).with_seed(3);
        let est = rept_core::Rept::new(cfg).run_sequential(std::iter::empty());
        let snap = Snapshot::from_estimate(&est, &cfg, Engine::FusedSorted, 0, 0, 0, 5);
        let live = LiveStats {
            stored_bytes: 0,
            journal_bytes: 123,
            journal_segments: 2,
            dlq: 7,
        };
        let stats = format_stats(&snap, &live);
        assert!(stats.contains("journal_bytes=123"));
        assert!(stats.contains("journal_segments=2"));
        assert!(stats.ends_with("dlq=7"));
        let journal = format_journal_stats(&snap, &live);
        assert!(journal.contains("bytes=123 segments=2"));
        assert!(journal.ends_with("dlq=7"));
    }

    #[test]
    fn top_k_all_formatting() {
        let entries = vec![
            ("alpha".to_string(), 3u32, 5.5f64),
            ("beta".to_string(), 1u32, 2.25f64),
        ];
        assert_eq!(
            format_top_k_all(&entries, 5),
            "OK TOPK ALL k=2 alpha/3=5.5 beta/1=2.25"
        );
        assert_eq!(format_top_k_all(&entries, 1), "OK TOPK ALL k=1 alpha/3=5.5");
    }

    #[test]
    fn parses_aggregate() {
        assert_eq!(parse("AGGREGATE"), Ok(Command::Aggregate));
        assert!(parse("AGGREGATE now").is_err(), "trailing token");
    }

    #[test]
    fn aggregate_reply_roundtrips_exactly() {
        let mut tau_v = FxHashMap::default();
        tau_v.insert(7u32, 3u64);
        tau_v.insert(2u32, 9u64);
        let groups = vec![
            GroupAggregate {
                start: 0,
                tau: vec![4, 0, 11],
                stored: vec![120, 98, 130],
                bytes: 4096,
                eta_total: 17,
                tau_v: Some(tau_v),
                eta_v: None,
            },
            GroupAggregate {
                start: 6,
                tau: vec![2],
                stored: vec![40],
                bytes: 512,
                eta_total: 0,
                tau_v: None,
                eta_v: Some(FxHashMap::default()),
            },
        ];
        let reply = format_aggregate(314, &groups);
        let mut lines = reply.lines();
        let header = lines.next().unwrap();
        assert_eq!(header, "OK AGGREGATE position=314 groups=2 lines=6");
        // Sorted-by-node map serialisation keeps the wire deterministic.
        let body: Vec<String> = lines.map(str::to_string).collect();
        assert_eq!(body[1], "TV 2:9 7:3");
        assert_eq!(body[5], "EV");
        let (position, parsed) = parse_aggregate_reply(header, &body).unwrap();
        assert_eq!(position, 314);
        assert_eq!(parsed, groups);

        // Framing violations are rejected, not mis-parsed.
        assert!(parse_aggregate_reply(header, &body[..3]).is_err());
        assert!(parse_aggregate_reply("OK AGGREGATE position=1", &[]).is_err());
        let mut bad = body.clone();
        bad[0] = "G start=0 bytes=1 eta=0 tau=1,2 stored=3".into();
        assert!(
            parse_aggregate_reply(header, &bad).is_err(),
            "tau/stored length mismatch"
        );
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        // The protocol's exactness guarantee: Display → parse is the
        // identity on f64 (shortest-roundtrip formatting).
        for x in [0.1f64, 1.0 / 3.0, 123456.789e-3, f64::MIN_POSITIVE] {
            let printed = format!("{x}");
            assert_eq!(printed.parse::<f64>().unwrap(), x);
        }
    }
}
