//! The TCP front-end: a thread-pool server speaking the line protocol.
//!
//! `handlers` OS threads each own a clone of the listener and serve one
//! connection at a time (further connections wait in the OS accept
//! backlog — the pool size bounds concurrent protocol work, mirroring
//! the bounded-channel idiom of the cluster simulation). Ingest
//! commands feed the shared [`ServeCore`] channel and feel its
//! backpressure; query commands read the published snapshot and never
//! touch the ingest thread.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rept_core::ReptEstimate;

use crate::core::{ServeConfig, ServeCore};
use crate::protocol::{self, Command};

/// How often an idle connection re-checks the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Backoff after a failed `accept` (e.g. fd exhaustion) — without it a
/// persistent error would busy-spin every handler thread at 100% CPU.
const ACCEPT_RETRY: Duration = Duration::from_millis(50);

/// Cap on how long a reply write may block on a client that stopped
/// reading — a full TCP send window must not pin a handler thread (and
/// with it `Server::shutdown`) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// A running TCP server over a [`ServeCore`]. Prefer an explicit
/// [`Self::shutdown`] (it returns the final estimate); a plain drop
/// still stops the acceptors and the ingest thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    core: Option<Arc<ServeCore>>,
    handlers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the core and binds `addr` (use port 0 for an ephemeral
    /// port), serving with `handlers` connection threads.
    ///
    /// # Errors
    ///
    /// Socket errors, and checkpoint-resume failures surfaced as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn start(
        cfg: ServeConfig,
        addr: impl ToSocketAddrs,
        handlers: usize,
    ) -> std::io::Result<Self> {
        let core =
            Arc::new(ServeCore::start(cfg).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::new();
        for i in 0..handlers.max(1) {
            let listener = listener.try_clone()?;
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rept-serve-handler-{i}"))
                    .spawn(move || accept_loop(listener, core, stop))
                    .expect("spawn handler thread"),
            );
        }
        Ok(Self {
            addr,
            stop,
            core: Some(core),
            handlers: threads,
        })
    }

    /// The bound address (the port clients connect to).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the serving core (in-process queries without a
    /// socket).
    pub fn core(&self) -> &ServeCore {
        self.core.as_ref().expect("core present until shutdown")
    }

    /// Sets the stop flag, wakes every acceptor blocked in `accept`, and
    /// joins the handler threads.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.handlers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.handlers.drain(..) {
            h.join().expect("handler thread panicked");
        }
    }

    /// Stops accepting, joins the handler threads, shuts the core down
    /// (final checkpoint when configured) and returns the final
    /// estimate.
    pub fn shutdown(mut self) -> ReptEstimate {
        self.stop_accepting();
        let core = self.core.take().expect("shutdown runs once");
        let core = Arc::try_unwrap(core).expect("handlers dropped their core handles");
        core.shutdown()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` already drained the handlers; a plain drop must not
        // leak acceptor threads, the ingest thread, or the bound port.
        // Dropping the last core Arc afterwards stops ingestion (with
        // the final checkpoint) via `ServeCore`'s own Drop.
        if !self.handlers.is_empty() {
            self.stop_accepting();
        }
    }
}

fn accept_loop(listener: TcpListener, core: Arc<ServeCore>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = listener.accept() else {
            std::thread::sleep(ACCEPT_RETRY);
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection from `shutdown`
        }
        let _ = serve_connection(stream, &core, &stop);
    }
}

/// Serves one connection until EOF, a `SHUTDOWN` command, or the stop
/// flag.
fn serve_connection(stream: TcpStream, core: &ServeCore, stop: &AtomicBool) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // The line buffer persists across timeout retries: `read_line` may
    // have consumed a partial line when the timer fires, and clearing it
    // would drop those bytes.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                let (reply, close) = execute(&line, core, stop);
                writer.write_all(reply.as_bytes())?;
                writer.write_all(b"\n")?;
                if close {
                    return Ok(());
                }
                line.clear();
                // Re-check between requests, not only on idle timeouts:
                // a client streaming lines back-to-back must not be able
                // to pin this handler past `Server::shutdown`.
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Parses and executes one request line, producing the reply line and
/// whether the connection should close (a parsed `SHUTDOWN` — keyed off
/// the command, not the raw text, so `ERR` replies to malformed
/// shutdown-like lines keep the connection open).
fn execute(line: &str, core: &ServeCore, stop: &AtomicBool) -> (String, bool) {
    let reply = match protocol::parse(line) {
        Ok(Command::Ingest(edges)) => {
            let n = edges.len();
            core.ingest(edges);
            format!("OK INGEST {n}")
        }
        Ok(Command::QueryGlobal) => protocol::format_global(&core.snapshot()),
        Ok(Command::QueryLocal(v)) => protocol::format_local(&core.snapshot(), v),
        Ok(Command::TopK(k)) => protocol::format_top_k(&core.snapshot(), k),
        Ok(Command::Stats) => protocol::format_stats(&core.snapshot()),
        Ok(Command::Flush) => format!("OK FLUSH position={}", core.flush()),
        Ok(Command::Checkpoint) => match core.checkpoint() {
            Ok(pos) => format!("OK CHECKPOINT position={pos}"),
            Err(msg) => format!("ERR {msg}"),
        },
        Ok(Command::Shutdown) => {
            stop.store(true, Ordering::SeqCst);
            return ("OK BYE".into(), true);
        }
        Err(msg) => format!("ERR {msg}"),
    };
    (reply, false)
}
