//! The TCP front-end: a thread-pool server speaking the line protocol
//! over a [`TenantRouter`].
//!
//! `handlers` OS threads each own a clone of the listener and serve one
//! connection at a time (further connections wait in the OS accept
//! backlog — the pool size bounds concurrent protocol work, mirroring
//! the bounded-channel idiom of the cluster simulation). Ingest
//! commands feed the selected tenants' [`ServeCore`] channels and feel
//! their backpressure; query commands read published snapshots and
//! never touch an ingest thread.
//!
//! Every connection carries one piece of state: its **current tenant**,
//! which starts as `default` and is switched by `USE`. A v1 client —
//! which never sends `USE` — therefore runs its whole session against
//! the `default` tenant, exactly as it did against the single-core
//! server.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rept_core::ReptEstimate;

use crate::core::{IngestError, ServeConfig, ServeCore};
use crate::metrics::{render_exposition, TenantScrape};
use crate::protocol::{self, Command, Scope, DEFAULT_TENANT};
use crate::tenant::{RouterConfig, TenantRouter};

/// How often an idle connection re-checks the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Backoff after a failed `accept` (e.g. fd exhaustion) — without it a
/// persistent error would busy-spin every handler thread at 100% CPU.
const ACCEPT_RETRY: Duration = Duration::from_millis(50);

/// Cap on how long a reply write may block on a client that stopped
/// reading — a full TCP send window must not pin a handler thread (and
/// with it `Server::shutdown`) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Socket/backoff timing knobs, separated from the constants so tests
/// can shrink them and drive the slow paths (accept-error backoff,
/// write timeout) in milliseconds instead of seconds.
#[derive(Debug, Clone, Copy)]
struct ServerTuning {
    read_timeout: Duration,
    write_timeout: Duration,
    accept_retry: Duration,
}

impl Default for ServerTuning {
    fn default() -> Self {
        Self {
            read_timeout: READ_TIMEOUT,
            write_timeout: WRITE_TIMEOUT,
            accept_retry: ACCEPT_RETRY,
        }
    }
}

/// A running TCP server over a [`TenantRouter`]. Prefer an explicit
/// [`Self::shutdown`] (it returns the final estimate); a plain drop
/// still stops the acceptors and every tenant's ingest thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    router: Option<Arc<TenantRouter>>,
    /// Kept so [`Self::core`] can lend `&ServeCore` — a borrow the
    /// compiler ends before `shutdown(self)` can run, which makes
    /// holding a core across shutdown a compile error instead of a
    /// drain wait. Released (taken) before the router shuts down.
    default_core: Option<Arc<ServeCore>>,
    handlers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a single-tenant router (just `default`, configured by
    /// `cfg`) and binds `addr` (use port 0 for an ephemeral port),
    /// serving with `handlers` connection threads. This is the v1
    /// entry point — byte-for-byte compatible with the pre-tenant
    /// server; use [`Self::start_router`] for multi-tenant serving.
    ///
    /// # Errors
    ///
    /// Socket errors, and checkpoint-resume failures surfaced as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn start(
        cfg: ServeConfig,
        addr: impl ToSocketAddrs,
        handlers: usize,
    ) -> std::io::Result<Self> {
        Self::start_router(RouterConfig::new(cfg), addr, handlers)
    }

    /// Starts the full router (resuming every tenant under its root
    /// directory) and binds `addr`.
    ///
    /// # Errors
    ///
    /// Socket errors, and checkpoint-resume failures surfaced as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn start_router(
        cfg: RouterConfig,
        addr: impl ToSocketAddrs,
        handlers: usize,
    ) -> std::io::Result<Self> {
        Self::start_router_tuned(cfg, addr, handlers, ServerTuning::default())
    }

    fn start_router_tuned(
        cfg: RouterConfig,
        addr: impl ToSocketAddrs,
        handlers: usize,
        tuning: ServerTuning,
    ) -> std::io::Result<Self> {
        let router =
            Arc::new(TenantRouter::start(cfg).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let mut threads = Vec::new();
        for i in 0..handlers.max(1) {
            let listener = listener.try_clone()?;
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rept-serve-handler-{i}"))
                    .spawn(move || accept_loop(listener, router, stop, tuning))
                    .expect("spawn handler thread"),
            );
        }
        let default_core = router
            .tenant(DEFAULT_TENANT)
            .expect("default tenant always exists");
        Ok(Self {
            addr,
            stop,
            router: Some(router),
            default_core: Some(default_core),
            handlers: threads,
        })
    }

    /// The bound address (the port clients connect to).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The tenant router (in-process tenant management and queries
    /// without a socket).
    pub fn router(&self) -> &TenantRouter {
        self.router.as_ref().expect("router present until shutdown")
    }

    /// Direct access to the `default` tenant's serving core (in-process
    /// queries without a socket) — the single-tenant view. Borrowed
    /// from the server, so it cannot be held across [`Self::shutdown`];
    /// use [`TenantRouter::tenant`] for an owned handle (and drop it
    /// before shutting down — see [`TenantRouter::shutdown`]).
    pub fn core(&self) -> &ServeCore {
        self.default_core
            .as_deref()
            .expect("core present until shutdown")
    }

    /// Sets the stop flag, wakes every acceptor blocked in `accept`, and
    /// joins the handler threads.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.handlers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.handlers.drain(..) {
            h.join().expect("handler thread panicked");
        }
    }

    /// Stops accepting, joins the handler threads, shuts every tenant
    /// down (final checkpoints where configured) and returns the
    /// `default` tenant's final estimate — the single-tenant view; use
    /// [`Self::shutdown_all`] to collect every tenant's estimate.
    pub fn shutdown(self) -> ReptEstimate {
        let mut finals = self.shutdown_all();
        let at = finals
            .iter()
            .position(|(n, _)| n == DEFAULT_TENANT)
            .unwrap_or_else(|| {
                // `shutdown_all` omits a tenant whose Arc is wedged
                // (see TenantRouter::shutdown's drain semantics).
                panic!(
                    "default tenant estimate unavailable: a handle from \
                     router().tenant(\"default\") was held across shutdown"
                )
            });
        finals.swap_remove(at).1
    }

    /// Stops accepting, joins the handler threads, and shuts every
    /// tenant down, returning `(tenant, final estimate)` pairs sorted
    /// by name.
    pub fn shutdown_all(mut self) -> Vec<(String, ReptEstimate)> {
        self.stop_accepting();
        self.default_core.take(); // release the `core()` handle
        let router = self.router.take().expect("shutdown runs once");
        let router = Arc::try_unwrap(router).expect("handlers dropped their router handles");
        router.shutdown()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // `shutdown` already drained the handlers; a plain drop must not
        // leak acceptor threads, ingest threads, or the bound port.
        // Dropping the last router Arc afterwards stops every tenant
        // (with final checkpoints) via `ServeCore`'s own Drop.
        if !self.handlers.is_empty() {
            self.stop_accepting();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<TenantRouter>,
    stop: Arc<AtomicBool>,
    tuning: ServerTuning,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = listener.accept() else {
            std::thread::sleep(tuning.accept_retry);
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection from `shutdown`
        }
        let _ = serve_connection(stream, &router, &stop, tuning);
    }
}

/// Serves one connection until EOF, a `SHUTDOWN` command, or the stop
/// flag.
fn serve_connection(
    stream: TcpStream,
    router: &TenantRouter,
    stop: &AtomicBool,
    tuning: ServerTuning,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(tuning.read_timeout))?;
    stream.set_write_timeout(Some(tuning.write_timeout))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Per-connection protocol state: the tenant `USE` selected.
    let mut tenant = DEFAULT_TENANT.to_string();
    // The line buffer persists across timeout retries: `read_line` may
    // have consumed a partial line when the timer fires, and clearing it
    // would drop those bytes.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                let (reply, close) = execute(&line, router, &mut tenant, stop);
                writer.write_all(reply.as_bytes())?;
                writer.write_all(b"\n")?;
                if close {
                    return Ok(());
                }
                line.clear();
                // Re-check between requests, not only on idle timeouts:
                // a client streaming lines back-to-back must not be able
                // to pin this handler past `Server::shutdown`.
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Parses and executes one request line, producing the reply line and
/// whether the connection should close (a parsed `SHUTDOWN` — keyed off
/// the command, not the raw text, so `ERR` replies to malformed
/// shutdown-like lines keep the connection open).
fn execute(
    line: &str,
    router: &TenantRouter,
    tenant: &mut String,
    stop: &AtomicBool,
) -> (String, bool) {
    // Current-tenant commands resolve the core per request, so a tenant
    // dropped mid-connection turns into an `ERR unknown tenant` reply
    // rather than a stale handle.
    let with_current = |f: &dyn Fn(&ServeCore) -> String| -> String {
        match router.tenant(tenant) {
            Some(core) => f(&core),
            None => format!("ERR unknown tenant {tenant:?}"),
        }
    };
    // Query verbs additionally record their service time into the
    // tenant's per-verb latency histogram (skipped when the tenant was
    // started with `metrics` off).
    let with_query = |verb: &'static str, f: &dyn Fn(&ServeCore) -> String| -> String {
        match router.tenant(tenant) {
            Some(core) => {
                if !core.config().metrics {
                    return f(&core);
                }
                let started = Instant::now();
                let reply = f(&core);
                core.metrics().record_query(verb, started.elapsed());
                reply
            }
            None => format!("ERR unknown tenant {tenant:?}"),
        }
    };
    let reply = match protocol::parse(line) {
        // Hand-rolled rather than `with_current` (a `Fn` closure would
        // have to clone the batch): this is the hot ingest path.
        Ok(Command::Ingest(Scope::Current, edges)) => match router.tenant(tenant) {
            Some(core) => {
                let n = edges.len();
                // Non-blocking: a full ingest queue surfaces as `ERR
                // BUSY` backpressure instead of pinning the handler
                // thread (and its connection slot) on a slow tenant.
                match core.try_ingest(edges) {
                    Ok(()) => format!("OK INGEST {n}"),
                    // BUSY is transient — the client retries, so the
                    // line does NOT go to the dead-letter file (it
                    // would be replayed *and* retried: duplicates).
                    Err(e @ IngestError::Busy) => format!("ERR {e}"),
                    Err(e) => {
                        // A durably-refused batch (quota, journal) is a
                        // rejection like any other: capture the line
                        // for operator replay.
                        core.dead_letter(line, &e.to_string());
                        format!("ERR {e}")
                    }
                }
            }
            None => format!("ERR unknown tenant {tenant:?}"),
        },
        Ok(Command::Ingest(scope, edges)) => {
            let n = edges.len();
            match router.ingest(&scope, edges) {
                Ok(fed) => format!("OK INGEST {n} tenants={fed}"),
                Err(msg) => {
                    if let Some(core) = router.tenant(tenant) {
                        core.dead_letter(line, &msg);
                    }
                    format!("ERR {msg}")
                }
            }
        }
        Ok(Command::QueryGlobal) => {
            with_query("global", &|core| protocol::format_global(&core.snapshot()))
        }
        Ok(Command::QueryLocal(v)) => {
            with_query("local", &|core| protocol::format_local(&core.snapshot(), v))
        }
        Ok(Command::TopK(k)) => {
            with_query("topk", &|core| protocol::format_top_k(&core.snapshot(), k))
        }
        Ok(Command::TopKAll(k)) => protocol::format_top_k_all(&router.merged_top_k(k), k),
        Ok(Command::Stats) => with_query("stats", &|core| {
            protocol::format_stats(&core.snapshot(), &core.live_stats())
        }),
        Ok(Command::StatsAll) => protocol::format_stats_all(&router.aggregate_stats()),
        Ok(Command::JournalStats) => with_query("journal", &|core| {
            protocol::format_journal_stats(&core.snapshot(), &core.live_stats())
        }),
        Ok(Command::Flush) => with_current(&|core| format!("OK FLUSH position={}", core.flush())),
        Ok(Command::Aggregate) => with_query("aggregate", &|core| match core.aggregates() {
            Ok((position, groups)) => protocol::format_aggregate(position, &groups),
            Err(msg) => format!("ERR {msg}"),
        }),
        Ok(Command::Checkpoint) => with_current(&|core| match core.checkpoint() {
            Ok(pos) => format!("OK CHECKPOINT position={pos}"),
            Err(msg) => format!("ERR {msg}"),
        }),
        Ok(Command::TenantCreate(name, opts)) => match router.create(&name, &opts) {
            Ok(()) => format!("OK TENANT CREATED {name}"),
            Err(msg) => format!("ERR {msg}"),
        },
        Ok(Command::TenantList) => {
            // One consistent lock snapshot — a concurrently dropped
            // tenant is absent rather than listed with a made-up
            // position.
            let tenants = router.list();
            let mut out = format!("OK TENANTS n={}", tenants.len());
            for (name, interval, position) in tenants {
                out.push_str(&format!(" {name}={position}"));
                if let Some(i) = interval {
                    out.push_str(&format!(":interval={i}"));
                }
            }
            out
        }
        Ok(Command::TenantDrop(name)) => match router.drop_tenant(&name) {
            Ok(()) => format!("OK TENANT DROPPED {name}"),
            Err(msg) => format!("ERR {msg}"),
        },
        Ok(Command::Health) => with_query("health", &|core| {
            protocol::format_health(tenant, &core.health())
        }),
        Ok(Command::Metrics) => match router.tenant(tenant) {
            Some(core) => {
                let scrape = TenantScrape {
                    tenant: tenant.clone(),
                    engine: core.config().engine.name(),
                    health: core.health(),
                    metrics: Arc::clone(core.metrics()),
                };
                protocol::format_metrics(&render_exposition(&[scrape], false))
            }
            None => format!("ERR unknown tenant {tenant:?}"),
        },
        Ok(Command::MetricsAll) => {
            protocol::format_metrics(&render_exposition(&router.scrape(), true))
        }
        Ok(Command::TraceTail(n)) => match router.tenant(tenant) {
            Some(core) => protocol::format_trace(&core.metrics().trace.tail(n)),
            None => format!("ERR unknown tenant {tenant:?}"),
        },
        Ok(Command::DlqReplay) => match router.tenant(tenant) {
            Some(core) => {
                let entries = core.dlq_drain();
                let n = entries.len() as u64;
                let mut failed = 0u64;
                for (_original_reason, dead_line) in entries {
                    // Only plain current-tenant INGEST lines can replay
                    // — a scoped line captured here was dead-lettered
                    // by a *fan-out* failure and replaying it through
                    // this tenant would misroute it.
                    match protocol::parse(&dead_line) {
                        Ok(Command::Ingest(Scope::Current, edges)) => {
                            // Blocking ingest: replay is an operator
                            // action, not the hot path — waiting beats
                            // re-dead-lettering on a momentarily full
                            // queue.
                            if let Err(e) = core.ingest(edges) {
                                core.dead_letter(&dead_line, &e.to_string());
                                failed += 1;
                            }
                        }
                        Ok(_) => {
                            core.dead_letter(&dead_line, "not replayable: scoped or non-ingest");
                            failed += 1;
                        }
                        Err(e) => {
                            // Still malformed: put it back with the
                            // fresh parse error (the original reason
                            // is superseded).
                            core.dead_letter(&dead_line, &e);
                            failed += 1;
                        }
                    }
                }
                protocol::format_dlq_replayed(n, failed)
            }
            None => format!("ERR unknown tenant {tenant:?}"),
        },
        Ok(Command::Use(name)) => {
            if router.contains(&name) {
                *tenant = name.clone();
                format!("OK USING {name}")
            } else {
                format!("ERR unknown tenant {name:?}")
            }
        }
        Ok(Command::Shutdown) => {
            stop.store(true, Ordering::SeqCst);
            return ("OK BYE".into(), true);
        }
        Err(msg) => {
            // Malformed lines that were *meant* to carry edges go to the
            // current tenant's dead-letter file, verbatim, with the
            // parse error as the reason — rejected data is inspectable
            // and re-feedable, not silently gone.
            if line.split_ascii_whitespace().next() == Some("INGEST") {
                if let Some(core) = router.tenant(tenant) {
                    core.dead_letter(line, &msg);
                }
            }
            format!("ERR {msg}")
        }
    };
    (reply, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rept_core::ReptConfig;
    use rept_gen::{barabasi_albert, GeneratorConfig};

    fn tight_tuning() -> ServerTuning {
        ServerTuning {
            read_timeout: Duration::from_millis(20),
            write_timeout: Duration::from_millis(50),
            accept_retry: Duration::from_millis(5),
        }
    }

    #[test]
    fn accept_error_backoff_recovers() {
        // A nonblocking listener makes every idle `accept` fail with
        // WouldBlock — the error branch must back off (not busy-spin)
        // and still accept once a client actually arrives.
        let cfg = RouterConfig::new(ServeConfig::new(ReptConfig::new(2, 2).with_seed(7)));
        let router = Arc::new(TenantRouter::start(cfg).expect("router"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        listener.set_nonblocking(true).expect("nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let handler = {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let tuning = tight_tuning();
            std::thread::spawn(move || accept_loop(listener, router, stop, tuning))
        };
        // Let the loop run through a stretch of failed accepts first.
        std::thread::sleep(Duration::from_millis(60));

        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        conn.write_all(b"FLUSH\n").expect("request");
        let mut reply = String::new();
        BufReader::new(conn.try_clone().expect("clone"))
            .read_line(&mut reply)
            .expect("reply");
        assert!(
            reply.starts_with("OK FLUSH"),
            "served after backoff: {reply}"
        );
        drop(conn);

        stop.store(true, Ordering::SeqCst);
        handler.join().expect("acceptor exits on the stop flag");
        Arc::try_unwrap(router).expect("sole owner").shutdown();
    }

    #[test]
    fn write_timeout_unpins_the_handler_from_a_stalled_client() {
        // One handler thread, a large top-k index, and a client that
        // pipelines big queries without ever reading a byte: the reply
        // write must hit the write timeout and drop that connection
        // instead of pinning the only handler (and every later client)
        // forever.
        let edges = barabasi_albert(&GeneratorConfig::new(20_000, 3), 11);
        let cfg = ServeConfig::new(ReptConfig::new(2, 2).with_seed(7)).with_top_k(100_000);
        let server =
            Server::start_router_tuned(RouterConfig::new(cfg), "127.0.0.1:0", 1, tight_tuning())
                .expect("start");
        server.core().ingest(edges).expect("ingest");
        server.core().flush();

        // Pipeline enough ~150 KB replies that they cannot all fit in
        // the two kernel socket buffers: the server's reply write has
        // to block, and the write timeout has to fire.
        let mut stalled = TcpStream::connect(server.local_addr()).expect("connect");
        stalled
            .set_write_timeout(Some(Duration::from_millis(200)))
            .expect("timeout");
        for _ in 0..1000 {
            if stalled.write_all(b"TOPK 100000\n").is_err() {
                break;
            }
        }

        let mut fresh = TcpStream::connect(server.local_addr()).expect("connect 2");
        fresh
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        fresh.write_all(b"QUERY GLOBAL\n").expect("request");
        let mut reply = String::new();
        BufReader::new(fresh.try_clone().expect("clone"))
            .read_line(&mut reply)
            .expect("the stalled connection must be dropped, freeing the handler");
        assert!(reply.starts_with("OK GLOBAL"), "reply: {reply}");
        drop(stalled);
        drop(fresh);
        server.shutdown();
    }
}
