//! Published estimate snapshots and the reader/writer handoff cell.
//!
//! The ingest thread owns the estimator; queries must never make it
//! wait. The subsystem therefore splits the work: the ingest thread
//! periodically *assembles* an immutable [`Snapshot`] (the expensive
//! part — cloning counters and running the combination arithmetic) and
//! then *publishes* it through [`Published`], whose critical section is
//! a single `Arc` pointer swap. Readers clone the `Arc` and work on a
//! consistent, immutable view for as long as they like — snapshot
//! isolation without ever blocking ingestion on a query.

use std::sync::{Arc, Mutex};

use rept_core::variance::plugin_confidence_interval;
use rept_core::{Engine, ReptConfig, ReptEstimate};
use rept_graph::edge::NodeId;
use rept_hash::fx::FxHashMap;

/// Write-ahead-journal state carried by a [`Snapshot`] — the
/// durability side of `STATS` and `JOURNAL STATS`. All zeros (and
/// `enabled == false`) when the core runs without a journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Whether the core journals acked batches before applying them.
    pub enabled: bool,
    /// Journal bytes currently on disk (all live segments).
    pub journal_bytes: u64,
    /// Live journal segment files.
    pub journal_segments: u64,
    /// Edges replayed from the journal tail at the last startup.
    pub replayed: u64,
}

/// An immutable view of the estimator at one stream position — what
/// every query reads. Assembled by the ingest thread, shared by `Arc`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Stream position (edges ingested) when this snapshot was taken.
    pub position: u64,
    /// Monotone snapshot sequence number (0 = the pre-stream snapshot).
    pub seq: u64,
    /// Checkpoints written by this process so far.
    pub checkpoints: u64,
    /// `τ̂` — the global estimate.
    pub global: f64,
    /// Plug-in ~95% confidence interval for `τ̂` (see
    /// [`plugin_confidence_interval`]). `None` when the variance formula
    /// needs `η̂` but η tracking is off.
    pub confidence95: Option<(f64, f64)>,
    /// `η̂` when tracked.
    pub eta_hat: Option<f64>,
    /// `τ̂_v` for every node with a non-zero estimate.
    pub locals: FxHashMap<NodeId, f64>,
    /// The `k` largest local estimates, descending (ties broken by
    /// smaller node id) — the spam/fraud-ranking consumption pattern
    /// without a full-map scan per query.
    pub top_k: Vec<(NodeId, f64)>,
    /// Edges currently stored across all processors.
    pub stored_edges: usize,
    /// Approximate estimator heap use in bytes.
    pub total_bytes: usize,
    /// Partition size `m`.
    pub m: u64,
    /// Processor count `c`.
    pub c: u64,
    /// The engine driving the run.
    pub engine: Engine,
    /// Write-ahead-journal state (zeros when journaling is off). Set by
    /// the core after [`Self::from_estimate`] assembles the rest.
    pub durability: DurabilityStats,
}

impl Snapshot {
    /// Builds a snapshot from a finished estimate.
    #[allow(clippy::too_many_arguments)]
    pub fn from_estimate(
        est: &ReptEstimate,
        cfg: &ReptConfig,
        engine: Engine,
        position: u64,
        seq: u64,
        checkpoints: u64,
        k: usize,
    ) -> Self {
        // The variance of the `c = m` and `c = c₁m` layouts is η-free,
        // so those always get an interval; everything else needs η̂.
        let eta_free = cfg.c == cfg.m || (cfg.c > cfg.m && cfg.c.is_multiple_of(cfg.m));
        let confidence95 = (eta_free || est.eta_hat.is_some()).then(|| {
            plugin_confidence_interval(est.global, est.eta_hat.unwrap_or(0.0), cfg.m, cfg.c, 1.96)
        });
        let mut top_k: Vec<(NodeId, f64)> = est.locals.iter().map(|(&v, &t)| (v, t)).collect();
        top_k.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        top_k.truncate(k);
        Self {
            position,
            seq,
            checkpoints,
            global: est.global,
            confidence95,
            eta_hat: est.eta_hat,
            locals: est.locals.clone(),
            top_k,
            stored_edges: est.diagnostics.stored_edges.iter().sum(),
            total_bytes: est.diagnostics.total_bytes,
            m: cfg.m,
            c: cfg.c,
            engine,
            durability: DurabilityStats::default(),
        }
    }

    /// The local estimate for `v` (0 for unseen nodes).
    pub fn local(&self, v: NodeId) -> f64 {
        self.locals.get(&v).copied().unwrap_or(0.0)
    }
}

/// Merges the top-k indices of several labelled snapshots into one
/// descending list of `(label, node, τ̂_v)` — the cross-tenant `TOPK`
/// aggregation. Each snapshot's own index is already sorted and
/// truncated, so the merge reads at most `k` entries per snapshot; ties
/// break by label, then smaller node id, keeping the result
/// deterministic.
pub fn merge_top_k<'a>(
    snapshots: impl Iterator<Item = (&'a str, &'a Snapshot)>,
    k: usize,
) -> Vec<(String, NodeId, f64)> {
    let mut merged: Vec<(String, NodeId, f64)> = snapshots
        .flat_map(|(label, snap)| {
            snap.top_k
                .iter()
                .take(k)
                .map(move |&(v, t)| (label.to_string(), v, t))
        })
        .collect();
    merged.sort_unstable_by(|a, b| {
        b.2.total_cmp(&a.2)
            .then_with(|| a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    merged.truncate(k);
    merged
}

/// A swap cell handing immutable values from one writer to many readers.
///
/// std-only stand-in for an RCU/`arc-swap` pointer: the mutex guards
/// nothing but the `Arc` itself, so both [`Self::store`] and
/// [`Self::load`] hold it for a pointer copy — readers can never stall
/// the writer for longer than that, and a reader holding a loaded
/// snapshot holds no lock at all.
#[derive(Debug)]
pub struct Published<T> {
    slot: Mutex<Arc<T>>,
}

impl<T> Published<T> {
    /// Creates the cell with its initial value.
    pub fn new(value: T) -> Self {
        Self {
            slot: Mutex::new(Arc::new(value)),
        }
    }

    /// Publishes a new value (pointer swap under the lock).
    pub fn store(&self, value: T) {
        let next = Arc::new(value);
        let prev = {
            let mut slot = self.slot.lock().expect("publish lock poisoned");
            std::mem::replace(&mut *slot, next)
        };
        // When no reader holds the previous snapshot, this frees it —
        // potentially a large per-node map. Outside the lock, so the
        // critical section stays a pure pointer swap.
        drop(prev);
    }

    /// Loads the current value (pointer clone under the lock).
    pub fn load(&self) -> Arc<T> {
        self.slot.lock().expect("publish lock poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rept_core::Rept;
    use rept_graph::edge::Edge;

    #[test]
    fn published_hands_out_consistent_views() {
        let cell = Published::new(1u64);
        let before = cell.load();
        cell.store(2);
        assert_eq!(*before, 1, "a held snapshot never changes");
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn snapshot_top_k_is_sorted_and_truncated() {
        // Two triangles sharing node 0 → node 0 has the largest local.
        let stream = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(3, 4),
            Edge::new(0, 4),
        ];
        let cfg = ReptConfig::new(2, 2).with_seed(3).with_eta(true);
        let est = Rept::new(cfg).run_sequential(stream.iter().copied());
        let snap = Snapshot::from_estimate(&est, &cfg, Engine::FusedSorted, 6, 1, 0, 2);
        assert_eq!(snap.position, 6);
        assert!(snap.top_k.len() <= 2);
        for pair in snap.top_k.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "descending with id tie-break: {:?}",
                snap.top_k
            );
        }
        if let Some(&(v, t)) = snap.top_k.first() {
            assert_eq!(snap.local(v), t);
        }
        assert_eq!(snap.local(999), 0.0);
    }

    #[test]
    fn merge_top_k_is_descending_and_labelled() {
        let stream = [
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(3, 4),
            Edge::new(0, 4),
        ];
        let cfg = ReptConfig::new(2, 2).with_seed(3);
        let est = Rept::new(cfg).run_sequential(stream.iter().copied());
        let a = Snapshot::from_estimate(&est, &cfg, Engine::FusedSorted, 6, 1, 0, 3);
        let cfg_b = ReptConfig::new(2, 2).with_seed(9);
        let est_b = Rept::new(cfg_b).run_sequential(stream.iter().copied());
        let b = Snapshot::from_estimate(&est_b, &cfg_b, Engine::FusedSorted, 6, 1, 0, 3);

        let merged = merge_top_k([("a", &a), ("b", &b)].into_iter(), 4);
        assert!(merged.len() <= 4);
        for pair in merged.windows(2) {
            assert!(pair[0].2 >= pair[1].2, "descending: {merged:?}");
        }
        // Every entry traces back to its labelled snapshot.
        for (label, v, t) in &merged {
            let src = if label == "a" { &a } else { &b };
            assert!(src.top_k.contains(&(*v, *t)), "{label}/{v}={t}");
        }
        assert!(merge_top_k(std::iter::empty(), 5).is_empty());
    }

    #[test]
    fn confidence_interval_presence_follows_eta() {
        let est_no_eta =
            Rept::new(ReptConfig::new(4, 2).with_seed(1)).run_sequential(std::iter::empty());
        // c < m without η: variance needs η̂ → no interval.
        let cfg = ReptConfig::new(4, 2).with_seed(1);
        let snap = Snapshot::from_estimate(&est_no_eta, &cfg, Engine::PerWorker, 0, 0, 0, 5);
        assert!(snap.confidence95.is_none());
        // c = m: η-free variance → interval always present.
        let cfg = ReptConfig::new(2, 2).with_seed(1);
        let est = Rept::new(cfg).run_sequential(std::iter::empty());
        let snap = Snapshot::from_estimate(&est, &cfg, Engine::PerWorker, 0, 0, 0, 5);
        let (lo, hi) = snap.confidence95.expect("eta-free layout");
        assert!(lo <= est.global && est.global <= hi);
    }
}
