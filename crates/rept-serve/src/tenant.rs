//! Multi-tenant serving: one router owning many named [`ServeCore`]s.
//!
//! REPT's design point is many logical estimators sharing one pass over
//! the stream; the serving analogue is many *tenants* — independent
//! estimator instances with their own configuration, engine, seed and
//! checkpoint lineage — fed from one ingest tier. [`TenantRouter`] owns
//! N named [`ServeCore`] instances and routes protocol traffic to them:
//!
//! * **Standalone tenants** carry their own [`ReptConfig`]/engine
//!   (overriding the router's base configuration field by field).
//! * **Interval tenants** derive their hash seed from the base seed
//!   through [`IntervalEstimator::config_for`], so per-window estimates
//!   (the paper's §II router-monitoring scenario) are *just tenants*:
//!   create `interval=0`, `interval=1`, … tenants and feed each window
//!   to its tenant — estimates stay independent across windows exactly
//!   as the batch interval driver guarantees.
//! * **Per-tenant crash safety** — with a
//!   [`RouterConfig::root_dir`] configured, every tenant checkpoints
//!   into its own directory (`<root>/<tenant>/serve.rpck`, rotation via
//!   [`ServeConfig::checkpoint_keep`] producing position-stamped
//!   siblings), a small `tenant.meta` file records the tenant's
//!   configuration, and [`TenantRouter::start`] resumes **all** tenants
//!   found under the root — a router-wide kill/restart cycle is
//!   bit-identical per tenant to an uninterrupted run (proptested).
//! * **Cross-tenant queries** — [`TenantRouter::aggregate_stats`] and
//!   [`TenantRouter::merged_top_k`] serve the `STATS *` / `TOPK k *`
//!   protocol forms without disturbing any tenant's ingest thread.
//!
//! The `default` tenant always exists (created from the base
//! configuration at startup) and is what v1 protocol clients — which
//! never send `USE` — talk to; it cannot be dropped.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rept_core::config::EtaMode;
use rept_core::interval::IntervalEstimator;
use rept_core::resume::{durable_write_rename, ResumableRun, SnapshotError};
use rept_core::{Engine, ReptConfig, ReptEstimate};
use rept_graph::edge::{Edge, NodeId};

use crate::core::{IngestError, QuotaPolicy, ServeConfig, ServeCore};
use crate::metrics::TenantScrape;
use crate::protocol::{validate_tenant_name, Scope, TenantOptions, DEFAULT_TENANT};
use crate::snapshot::merge_top_k;

/// File name of a tenant's primary checkpoint inside its directory.
const TENANT_CHECKPOINT: &str = "serve.rpck";
/// File name of the per-tenant configuration manifest.
const TENANT_META: &str = "tenant.meta";

/// Configuration of a [`TenantRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The base serving configuration: used verbatim for the `default`
    /// tenant and as the template other tenants override field by
    /// field. Its `checkpoint_path` applies to the `default` tenant
    /// only (when unset and a root directory is configured, `default`
    /// checkpoints under the root like everyone else).
    pub base: ServeConfig,
    /// Root directory for per-tenant checkpoints and manifests
    /// (`<root>/<tenant>/`). `None` disables tenant persistence:
    /// tenants can still be created but vanish with the process.
    pub root_dir: Option<PathBuf>,
}

impl RouterConfig {
    /// A router with no tenant persistence.
    pub fn new(base: ServeConfig) -> Self {
        Self {
            base,
            root_dir: None,
        }
    }

    /// Enables per-tenant checkpoint directories under `root`.
    pub fn with_root_dir(mut self, root: PathBuf) -> Self {
        self.root_dir = Some(root);
        self
    }
}

/// Statistics aggregated across every tenant — the `STATS *` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// Number of live tenants.
    pub tenants: usize,
    /// Σ stream positions.
    pub position: u64,
    /// Σ stored edges.
    pub stored_edges: usize,
    /// Σ approximate estimator heap bytes.
    pub bytes: usize,
    /// Σ per-tenant checkpoint counts.
    pub checkpoints: u64,
    /// Σ tracked (non-zero local) nodes.
    pub tracked_nodes: usize,
    /// Σ write-ahead-journal bytes on disk (0 when no tenant journals).
    pub journal_bytes: u64,
    /// Σ dead-letter counts across tenants.
    pub dlq: u64,
}

/// One live tenant: its core plus the resolved bookkeeping needed to
/// persist and describe it.
#[derive(Debug)]
struct TenantEntry {
    core: Arc<ServeCore>,
    /// `Some(i)` when the tenant's seed was interval-derived.
    interval: Option<u64>,
}

/// A router owning N named serving cores. See the module docs.
#[derive(Debug)]
pub struct TenantRouter {
    cfg: RouterConfig,
    tenants: Mutex<BTreeMap<String, TenantEntry>>,
}

impl TenantRouter {
    /// Starts the router: resumes every tenant found under the root
    /// directory (directories with a `tenant.meta` manifest or a
    /// readable checkpoint), then ensures the `default` tenant exists.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when a tenant's checkpoint cannot be decoded
    /// or disagrees with its recorded configuration.
    pub fn start(cfg: RouterConfig) -> Result<Self, SnapshotError> {
        let router = Self {
            cfg,
            tenants: Mutex::new(BTreeMap::new()),
        };
        // Resume whatever the root directory holds.
        if let Some(root) = router.cfg.root_dir.clone() {
            if root.is_dir() {
                // Sweep retired directories first: `drop_tenant` renames
                // a tenant dir to `.trash-…` before deleting it, and a
                // crash in that window leaves the trash behind forever
                // (the resume scan skips dot-names). Best-effort — a
                // sweep failure must not block startup.
                for entry in std::fs::read_dir(&root)
                    .map_err(|e| SnapshotError::Io(e.to_string()))?
                    .filter_map(|e| e.ok())
                {
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if name.starts_with(".trash-") && entry.path().is_dir() {
                        let _ = std::fs::remove_dir_all(entry.path());
                    }
                }
                let mut names: Vec<String> = std::fs::read_dir(&root)
                    .map_err(|e| SnapshotError::Io(e.to_string()))?
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().is_dir())
                    .filter_map(|e| e.file_name().to_str().map(str::to_owned))
                    .filter(|n| validate_tenant_name(n).is_ok())
                    .collect();
                names.sort();
                for name in names {
                    let dir = root.join(&name);
                    let Some(meta) = read_tenant_manifest(&dir)? else {
                        continue; // unrelated directory: no manifest, no checkpoint
                    };
                    let interval = meta.interval;
                    let serve = router.tenant_serve_config(
                        &name,
                        meta.rept,
                        meta.engine,
                        meta.memory_budget,
                        meta.quota,
                    );
                    let core = match ServeCore::start(serve) {
                        Ok(core) => core,
                        // A manifest torn mid-value can still *parse* —
                        // e.g. an `engine=fused-hash` tail cut down to
                        // the `fused` alias — and then contradict the
                        // checkpoint it resumes. The checkpoint header
                        // is CRC-guarded; the manifest is not: trust
                        // the checkpoint and retry under its config.
                        Err(e) => {
                            let ckpt = dir.join(TENANT_CHECKPOINT);
                            if !ckpt.is_file() {
                                return Err(e);
                            }
                            eprintln!(
                                "rept-serve: tenant {name:?} manifest config rejected \
                                 ({e}); retrying from the checkpoint header"
                            );
                            let run = ResumableRun::from_checkpoint_file(&ckpt)?;
                            // A reservoir checkpoint implies the shed
                            // policy — the only one that runs reservoirs.
                            let serve = router.tenant_serve_config(
                                &name,
                                *run.config(),
                                run.engine(),
                                run.memory_budget(),
                                QuotaPolicy::Shed,
                            );
                            drop(run); // `start` re-reads the checkpoint itself
                            ServeCore::start(serve)?
                        }
                    };
                    router.tenants.lock().expect("tenant lock").insert(
                        name,
                        TenantEntry {
                            core: Arc::new(core),
                            interval,
                        },
                    );
                }
            }
        }
        // The default tenant always exists; when it was not resumed
        // above, create it from the base configuration.
        if !router.contains(DEFAULT_TENANT) {
            let mut serve = router.cfg.base.clone();
            if serve.checkpoint_path.is_none() {
                if let Some(root) = &router.cfg.root_dir {
                    serve.checkpoint_path = Some(root.join(DEFAULT_TENANT).join(TENANT_CHECKPOINT));
                }
            }
            router.install(DEFAULT_TENANT.to_string(), serve, None)?;
        }
        Ok(router)
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The resolved [`ServeConfig`] a tenant named `name` with estimator
    /// config `rept` and engine `engine` runs under: router base
    /// settings, per-tenant checkpoint path when a root is configured.
    fn tenant_serve_config(
        &self,
        name: &str,
        rept: ReptConfig,
        engine: Engine,
        memory_budget: Option<u64>,
        quota: QuotaPolicy,
    ) -> ServeConfig {
        let mut serve = self.cfg.base.clone();
        serve.rept = rept;
        serve.engine = engine;
        serve.memory_budget = memory_budget;
        serve.quota = quota;
        serve.checkpoint_path = self
            .cfg
            .root_dir
            .as_ref()
            .map(|root| root.join(name).join(TENANT_CHECKPOINT));
        if name == DEFAULT_TENANT && self.cfg.base.checkpoint_path.is_some() {
            serve.checkpoint_path = self.cfg.base.checkpoint_path.clone();
        }
        serve
    }

    /// Resolves `TENANT CREATE` options against the base configuration:
    /// explicit overrides win, `interval=i` derives the seed from the
    /// (possibly overridden) base via [`IntervalEstimator`].
    ///
    /// # Errors
    ///
    /// A description when the options are invalid (e.g. `m < 2`).
    pub fn resolve_options(&self, opts: &TenantOptions) -> Result<(ReptConfig, Engine), String> {
        self.resolve_options_full(opts).map(|(r, e, _, _)| (r, e))
    }

    /// [`Self::resolve_options`] including the overload-resilience
    /// options: the memory budget (bytes) and the quota policy applied
    /// when the budget is reached.
    ///
    /// # Errors
    ///
    /// A description when the options are invalid — including a
    /// `quota=` policy without the `memory_budget=` it would enforce.
    pub fn resolve_options_full(
        &self,
        opts: &TenantOptions,
    ) -> Result<(ReptConfig, Engine, Option<u64>, QuotaPolicy), String> {
        if opts.quota.is_some() && opts.memory_budget.is_none() {
            return Err("quota policy requires a memory_budget to enforce".into());
        }
        // Enforced here, not only in the wire parser: `TenantOptions`
        // is public API, and silently ignoring `seed` next to
        // `interval` would hand the caller a tenant on the wrong hash.
        if opts.seed.is_some() && opts.interval.is_some() {
            return Err(
                "seed and interval are mutually exclusive (interval derives the seed)".into(),
            );
        }
        let base = self.cfg.base.rept;
        let m = opts.m.unwrap_or(base.m);
        let c = opts.c.unwrap_or(base.c);
        if m < 2 {
            return Err("m must be ≥ 2".into());
        }
        if c < 1 {
            return Err("c must be ≥ 1".into());
        }
        let mut rept = ReptConfig { m, c, ..base };
        if let Some(seed) = opts.seed {
            rept.seed = seed;
        }
        if let Some(i) = opts.interval {
            // The interval sequence is derived from the *base* seed, so
            // an interval tenant is exactly the batch driver's window i.
            rept = IntervalEstimator::new(rept.with_seed(base.seed)).config_for(i);
        }
        Ok((
            rept,
            opts.engine.unwrap_or(self.cfg.base.engine),
            opts.memory_budget,
            opts.quota.unwrap_or_default(),
        ))
    }

    /// Creates a tenant from protocol options (see
    /// [`Self::resolve_options`]).
    ///
    /// # Errors
    ///
    /// A description: invalid name, duplicate tenant, invalid options,
    /// or a checkpoint/manifest failure.
    pub fn create(&self, name: &str, opts: &TenantOptions) -> Result<(), String> {
        validate_tenant_name(name)?;
        let (rept, engine, budget, quota) = self.resolve_options_full(opts)?;
        let serve = self.tenant_serve_config(name, rept, engine, budget, quota);
        self.install(name.to_string(), serve, opts.interval)
            .map_err(|e| match e {
                SnapshotError::Invalid("tenant already exists") => {
                    format!("tenant {name:?} already exists")
                }
                other => format!("cannot start tenant {name:?}: {other}"),
            })
    }

    /// Starts a core for `name` under `serve`, writes its manifest, and
    /// inserts it into the map. The whole sequence runs under the
    /// tenant lock: the duplicate check must precede the manifest
    /// write, or a racing creation that loses the insert could leave
    /// *its* manifest (different seed/engine) on disk next to the
    /// winner's checkpoint, poisoning the next restart.
    ///
    /// Directory side effects happen only in the tenant's *managed*
    /// directory (`<root>/<name>/`): a `default` tenant running on a
    /// caller-supplied `checkpoint_path` (the pre-tenant
    /// `Server::start` shape) gets no manifest and no directory
    /// creation — byte-for-byte the old on-disk behaviour.
    fn install(
        &self,
        name: String,
        serve: ServeConfig,
        interval: Option<u64>,
    ) -> Result<(), SnapshotError> {
        let mut tenants = self.tenants.lock().expect("tenant lock");
        if tenants.contains_key(&name) {
            return Err(SnapshotError::Invalid("tenant already exists"));
        }
        let managed_dir = self.cfg.root_dir.as_ref().and_then(|root| {
            let dir = root.join(&name);
            (serve.checkpoint_path.as_deref().and_then(Path::parent) == Some(dir.as_path()))
                .then_some(dir)
        });
        if let Some(dir) = &managed_dir {
            // A fresh create starts empty: clear any leftover state a
            // failed earlier removal left behind, or `ServeCore::start`
            // below would silently resume it (compatible config) or
            // refuse to start (mismatched config).
            let _ = std::fs::remove_dir_all(dir);
            std::fs::create_dir_all(dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
            write_tenant_manifest(dir, &serve, interval)
                .map_err(|e| SnapshotError::Io(e.to_string()))?;
        }
        // Held across the core start: creation is rare and (with the
        // managed directory wiped above) checkpoint-decode-free, and
        // exclusivity here is what makes the check-then-write atomic.
        let core = ServeCore::start(serve)?;
        tenants.insert(
            name,
            TenantEntry {
                core: Arc::new(core),
                interval,
            },
        );
        Ok(())
    }

    /// Shuts a tenant down cleanly and removes it, deleting its
    /// checkpoint directory (otherwise a restart would resurrect it).
    /// The `default` tenant cannot be dropped — v1 clients depend on it.
    ///
    /// # Errors
    ///
    /// A description when the tenant is unknown or is `default`.
    pub fn drop_tenant(&self, name: &str) -> Result<(), String> {
        if name == DEFAULT_TENANT {
            return Err("the default tenant cannot be dropped".into());
        }
        let (entry, trash) = {
            let mut tenants = self.tenants.lock().expect("tenant lock");
            let entry = tenants
                .remove(name)
                .ok_or_else(|| format!("unknown tenant {name:?}"))?;
            // Retire the checkpoint directory while still holding the
            // lock — a racing `TENANT CREATE` of the same name (blocked
            // on this lock in `install`) must not collide with it — but
            // only by *renaming* it aside: a rename is fast, whereas
            // deleting a directory of rotated checkpoints under the
            // router-wide lock would stall every tenant's traffic.
            // Checkpoints of the dropped core are disabled first, so a
            // wedged Arc that outlives the drain below cannot write a
            // stale-config blob into a recreated same-name directory.
            entry.core.disable_checkpoints();
            let mut trash = Ok(None);
            if let Some(dir) = entry
                .core
                .config()
                .checkpoint_path
                .as_ref()
                .and_then(|p| p.parent())
                .filter(|dir| dir.exists())
            {
                static TRASH_SEQ: AtomicU64 = AtomicU64::new(0);
                let seq = TRASH_SEQ.fetch_add(1, Ordering::Relaxed);
                // Leading '.' keeps the name invalid as a tenant, so a
                // crash between rename and delete cannot make the
                // startup scan resurrect it.
                let retired = dir.with_file_name(format!(".trash-{name}-{seq}"));
                trash = match std::fs::rename(dir, &retired) {
                    Ok(()) => Ok(Some(retired)),
                    // Surfaced to the caller: a surviving directory
                    // would resurrect the tenant at the next restart.
                    Err(e) => Err(format!(
                        "tenant {name:?} dropped, but its checkpoint directory {dir:?} \
                         could not be retired: {e}"
                    )),
                };
            }
            (entry, trash)
        };
        // The slow work happens outside the lock.
        let removed = match trash {
            Ok(Some(retired)) => std::fs::remove_dir_all(&retired).map_err(|e| {
                format!(
                    "tenant {name:?} dropped, but its retired checkpoint directory \
                     {retired:?} could not be removed: {e}"
                )
            }),
            Ok(None) => Ok(()),
            Err(msg) => Err(msg),
        };
        // Queries hold the Arc only for the duration of a request, so a
        // short wait almost always gets exclusive ownership for a clean
        // shutdown; a wedged holder degrades to Drop-driven shutdown.
        let mut core = entry.core;
        for _ in 0..2000 {
            match Arc::try_unwrap(core) {
                Ok(owned) => {
                    owned.shutdown();
                    return removed;
                }
                Err(still_shared) => {
                    core = still_shared;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
        drop(core);
        removed
    }

    /// The named tenant's core, if it exists.
    pub fn tenant(&self, name: &str) -> Option<Arc<ServeCore>> {
        self.tenants
            .lock()
            .expect("tenant lock")
            .get(name)
            .map(|e| Arc::clone(&e.core))
    }

    /// Whether a tenant exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tenants.lock().expect("tenant lock").contains_key(name)
    }

    /// Number of live tenants.
    pub fn len(&self) -> usize {
        self.tenants.lock().expect("tenant lock").len()
    }

    /// True when the router has no tenants (only before [`Self::start`]
    /// finishes — `default` always exists afterwards).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tenant names in sorted order, with each tenant's interval index
    /// when it was interval-derived.
    pub fn names(&self) -> Vec<(String, Option<u64>)> {
        self.tenants
            .lock()
            .expect("tenant lock")
            .iter()
            .map(|(n, e)| (n.clone(), e.interval))
            .collect()
    }

    /// One consistent listing per tenant — `(name, interval index,
    /// stream position)` from a single lock acquisition, so a tenant
    /// dropped concurrently is either absent or fully present, never a
    /// fabricated entry. Backs the `TENANT LIST` reply.
    pub fn list(&self) -> Vec<(String, Option<u64>, u64)> {
        let cores: Vec<(String, Option<u64>, Arc<ServeCore>)> = self
            .tenants
            .lock()
            .expect("tenant lock")
            .iter()
            .map(|(n, e)| (n.clone(), e.interval, Arc::clone(&e.core)))
            .collect();
        // Positions read outside the lock: they only touch published
        // snapshots.
        cores
            .into_iter()
            .map(|(n, interval, core)| {
                let position = core.position();
                (n, interval, position)
            })
            .collect()
    }

    /// Snapshot of every tenant's core, sorted by name.
    fn cores(&self) -> Vec<(String, Arc<ServeCore>)> {
        self.tenants
            .lock()
            .expect("tenant lock")
            .iter()
            .map(|(n, e)| (n.clone(), Arc::clone(&e.core)))
            .collect()
    }

    /// Queues `edges` to every tenant selected by `scope`; returns the
    /// number of tenants fed. [`Scope::Current`] is resolved by the
    /// caller (the server tracks each connection's tenant) and is
    /// rejected here.
    ///
    /// # Errors
    ///
    /// A description when a named tenant is unknown (checked before any
    /// edge is queued, so a failed fan-out feeds no one).
    pub fn ingest(&self, scope: &Scope, edges: Vec<Edge>) -> Result<usize, String> {
        let targets: Vec<(String, Arc<ServeCore>)> = match scope {
            Scope::Current => return Err("unresolved Current scope".into()),
            Scope::All => self.cores(),
            Scope::Named(names) => {
                let tenants = self.tenants.lock().expect("tenant lock");
                let mut targets = Vec::with_capacity(names.len());
                for name in names {
                    let entry = tenants
                        .get(name)
                        .ok_or_else(|| format!("unknown tenant {name:?}"))?;
                    targets.push((name.clone(), Arc::clone(&entry.core)));
                }
                targets
            }
        };
        let fed = targets.len();
        // A refused batch (journal failure, quota) surfaces as an
        // error, but the fan-out still offers the batch to every target
        // first — durability and quotas are per tenant, and starving
        // healthy tenants because one tenant's disk failed would turn a
        // partial outage into a total one. *Every* failing tenant is
        // reported, not just the first: the caller must know exactly
        // which tenants to replay to.
        let mut failures: Vec<(String, IngestError)> = Vec::new();
        let mut targets = targets.into_iter();
        if let Some((last_name, last)) = targets.next_back() {
            for (name, core) in targets {
                if let Err(e) = core.ingest(edges.clone()) {
                    failures.push((name, e));
                }
            }
            // The last tenant takes the Vec itself.
            if let Err(e) = last.ingest(edges) {
                failures.push((last_name, e));
            }
        }
        if failures.is_empty() {
            Ok(fed)
        } else {
            Err(failures
                .iter()
                .map(|(name, e)| format!("tenant {name:?}: {e}"))
                .collect::<Vec<_>>()
                .join("; "))
        }
    }

    /// Barrier on every tenant: returns `(name, position)` pairs.
    pub fn flush_all(&self) -> Vec<(String, u64)> {
        self.cores()
            .into_iter()
            .map(|(n, c)| {
                let pos = c.flush();
                (n, pos)
            })
            .collect()
    }

    /// Statistics aggregated across all tenants (the `STATS *` path).
    pub fn aggregate_stats(&self) -> RouterStats {
        let mut stats = RouterStats {
            tenants: 0,
            position: 0,
            stored_edges: 0,
            bytes: 0,
            checkpoints: 0,
            tracked_nodes: 0,
            journal_bytes: 0,
            dlq: 0,
        };
        for (_, core) in self.cores() {
            let snap = core.snapshot();
            let live = core.live_stats();
            stats.tenants += 1;
            stats.position += snap.position;
            stats.stored_edges += snap.stored_edges;
            stats.bytes += snap.total_bytes;
            stats.checkpoints += snap.checkpoints;
            stats.tracked_nodes += snap.locals.len();
            // Gauge-backed, not snapshot state: an idle tenant's journal
            // growth shows up without waiting for a publication point.
            stats.journal_bytes += live.journal_bytes;
            stats.dlq += live.dlq;
        }
        stats
    }

    /// One scrape unit per tenant (name, live health, shared metric
    /// set), sorted by name — the `METRICS *` payload, and the surface
    /// a shard coordinator would poll.
    pub fn scrape(&self) -> Vec<TenantScrape> {
        self.cores()
            .into_iter()
            .map(|(tenant, core)| TenantScrape {
                engine: core.config().engine.name(),
                health: core.health(),
                metrics: Arc::clone(core.metrics()),
                tenant,
            })
            .collect()
    }

    /// The `k` largest local estimates across all tenants, merged
    /// descending and labelled with their tenant (the `TOPK k *` path).
    pub fn merged_top_k(&self, k: usize) -> Vec<(String, NodeId, f64)> {
        let snaps: Vec<_> = self
            .cores()
            .into_iter()
            .map(|(n, c)| (n, c.snapshot()))
            .collect();
        merge_top_k(snaps.iter().map(|(n, s)| (n.as_str(), &**s)), k)
    }

    /// Checkpoints every tenant that has a checkpoint path; returns
    /// `(name, position)` pairs.
    ///
    /// # Errors
    ///
    /// The first failing tenant's description (earlier tenants stay
    /// checkpointed).
    pub fn checkpoint_all(&self) -> Result<Vec<(String, u64)>, String> {
        self.cores()
            .into_iter()
            .map(|(n, c)| {
                let pos = c.checkpoint().map_err(|e| format!("tenant {n:?}: {e}"))?;
                Ok((n, pos))
            })
            .collect()
    }

    /// Stops every tenant (final checkpoints where configured) and
    /// returns each tenant's final estimate, sorted by name.
    ///
    /// Drain semantics: finalizing a tenant needs exclusive ownership
    /// of its core, so this waits (up to ~5 s per tenant) for
    /// outstanding [`Self::tenant`] handles to drop. A handle held
    /// past that is treated as wedged: the tenant still shuts down —
    /// Drop-driven, final checkpoint included — when the stray handle
    /// dies, but its estimate is **omitted** from the result. Release
    /// borrowed cores before shutting the router down (the TCP server
    /// does: handler threads are joined first).
    pub fn shutdown(self) -> Vec<(String, ReptEstimate)> {
        let tenants = self.tenants.into_inner().expect("tenant lock");
        tenants
            .into_iter()
            .filter_map(|(name, entry)| {
                let mut core = entry.core;
                // Connection handlers are gone by the time the router
                // shuts down, but be robust to a stray Arc anyway.
                for _ in 0..5000 {
                    match Arc::try_unwrap(core) {
                        Ok(owned) => return Some((name, owned.shutdown())),
                        Err(still_shared) => {
                            core = still_shared;
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                    }
                }
                drop(core); // wedged: Drop-driven shutdown, no estimate
                None
            })
            .collect()
    }
}

/// A tenant directory's recorded configuration, as recovered at router
/// startup from `tenant.meta` (or the checkpoint header fallback).
struct TenantManifest {
    rept: ReptConfig,
    engine: Engine,
    interval: Option<u64>,
    memory_budget: Option<u64>,
    quota: QuotaPolicy,
}

/// Writes `<dir>/tenant.meta`: a line-oriented `key=value` manifest of
/// the tenant's estimator configuration, engine, interval index and
/// overload options — enough to reconstruct its [`ServeConfig`] at
/// router startup even when no checkpoint was ever written (e.g. kill
/// before the first checkpoint interval).
fn write_tenant_manifest(
    dir: &Path,
    serve: &ServeConfig,
    interval: Option<u64>,
) -> std::io::Result<()> {
    let rept = &serve.rept;
    let mut meta = String::new();
    meta.push_str(&format!("m={}\n", rept.m));
    meta.push_str(&format!("c={}\n", rept.c));
    meta.push_str(&format!("seed={}\n", rept.seed));
    meta.push_str(&format!("track_locals={}\n", rept.track_locals as u8));
    meta.push_str(&format!("track_eta={}\n", rept.track_eta as u8));
    meta.push_str(&format!(
        "eta_mode={}\n",
        match rept.eta_mode {
            EtaMode::PaperInit => "paper",
            EtaMode::StrictNonLast => "strict",
        }
    ));
    meta.push_str(&format!("engine={}\n", serve.engine.name()));
    if let Some(i) = interval {
        meta.push_str(&format!("interval={i}\n"));
    }
    if let Some(b) = serve.memory_budget {
        meta.push_str(&format!("memory_budget={b}\n"));
        meta.push_str(&format!("quota={}\n", serve.quota.name()));
    }
    // Durable write-then-rename, exactly like the checkpoints: without
    // the fsync a power loss can persist the rename over unsynced data,
    // leaving a *renamed* torn manifest that shadows nothing good.
    durable_write_rename(&dir.join(TENANT_META), meta.as_bytes())
}

/// Reads a tenant directory's configuration: the `tenant.meta` manifest
/// when present, else recovered from the checkpoint header. `Ok(None)`
/// when the directory holds neither (not a tenant directory).
fn read_tenant_manifest(dir: &Path) -> Result<Option<TenantManifest>, SnapshotError> {
    let meta_path = dir.join(TENANT_META);
    let parsed = match std::fs::read_to_string(&meta_path) {
        Ok(text) => match parse_tenant_manifest(&text) {
            Ok(parsed) => Some(parsed),
            // A manifest that exists but doesn't parse (truncated by a
            // crash on a pre-fsync filesystem, hand-edited, …) is
            // *damaged*, not absent — don't fail the whole router
            // startup over it when the checkpoint can answer instead.
            Err(e) => {
                if dir.join(TENANT_CHECKPOINT).is_file() {
                    eprintln!(
                        "rept-serve: unreadable manifest {} ({e:?}); \
                         falling back to the checkpoint header",
                        meta_path.display()
                    );
                    None
                } else {
                    return Err(e);
                }
            }
        },
        Err(_) => None,
    };
    if let Some(parsed) = parsed {
        return Ok(Some(parsed));
    }
    // No usable manifest (pre-manifest directory, a torn write that
    // never renamed, or a damaged one with a checkpoint beside it):
    // fall back to the checkpoint header, which carries the full config
    // and engine. This decodes the whole blob and the subsequent
    // `ServeCore::start` decodes it again — accepted: the RPCK codec
    // exposes no header-only peek, and this path only runs once per
    // damaged directory at startup.
    let ckpt = dir.join(TENANT_CHECKPOINT);
    if ckpt.is_file() {
        let run = ResumableRun::from_checkpoint_file(&ckpt)?;
        return Ok(Some(TenantManifest {
            rept: *run.config(),
            engine: run.engine(),
            interval: None,
            // A reservoir checkpoint implies the shed policy — the
            // only one that runs reservoirs.
            memory_budget: run.memory_budget(),
            quota: QuotaPolicy::Shed,
        }));
    }
    Ok(None)
}

/// Parses the `key=value` manifest body written by
/// [`write_tenant_manifest`].
fn parse_tenant_manifest(text: &str) -> Result<TenantManifest, SnapshotError> {
    let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
    for line in text.lines() {
        if let Some((k, v)) = line.split_once('=') {
            fields.insert(k.trim(), v.trim());
        }
    }
    let num = |key: &str| -> Result<u64, SnapshotError> {
        fields
            .get(key)
            .and_then(|v| v.parse().ok())
            .ok_or(SnapshotError::Invalid("tenant manifest field"))
    };
    let m = num("m")?;
    let c = num("c")?;
    if m < 2 || c < 1 {
        return Err(SnapshotError::Invalid("tenant manifest layout"));
    }
    let rept = ReptConfig::new(m, c)
        .with_seed(num("seed")?)
        .with_locals(num("track_locals")? != 0)
        .with_eta(num("track_eta")? != 0)
        .with_eta_mode(match fields.get("eta_mode").copied() {
            Some("strict") => EtaMode::StrictNonLast,
            _ => EtaMode::PaperInit,
        });
    let engine = fields
        .get("engine")
        .and_then(|n| Engine::from_name(n))
        .ok_or(SnapshotError::Invalid("tenant manifest engine"))?;
    let interval = fields.get("interval").and_then(|v| v.parse().ok());
    let memory_budget = match fields.get("memory_budget") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| SnapshotError::Invalid("tenant manifest memory_budget"))?,
        ),
        None => None,
    };
    let quota = match fields.get("quota") {
        Some(v) => QuotaPolicy::from_name(v)
            .ok_or(SnapshotError::Invalid("tenant manifest quota policy"))?,
        None => QuotaPolicy::default(),
    };
    Ok(TenantManifest {
        rept,
        engine,
        interval,
        memory_budget,
        quota,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rept_core::Rept;
    use rept_gen::{barabasi_albert, GeneratorConfig};

    fn stream() -> Vec<Edge> {
        barabasi_albert(&GeneratorConfig::new(300, 5), 4)
    }

    fn base_serve() -> ServeConfig {
        ServeConfig::new(ReptConfig::new(3, 5).with_seed(11).with_eta(true)).with_snapshot_every(64)
    }

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rept-tenant-{tag}-{}", std::process::id()))
    }

    #[test]
    fn default_tenant_always_exists() {
        let router = TenantRouter::start(RouterConfig::new(base_serve())).expect("start");
        assert!(router.contains(DEFAULT_TENANT));
        assert_eq!(router.len(), 1);
        assert!(!router.is_empty());
        for (_, est) in router.shutdown() {
            assert!(est.global >= 0.0);
        }
    }

    #[test]
    fn tenants_match_standalone_cores() {
        let stream = stream();
        let router = TenantRouter::start(RouterConfig::new(base_serve())).expect("start");
        router
            .create(
                "alpha",
                &TenantOptions {
                    engine: Some(Engine::PerWorker),
                    seed: Some(99),
                    ..TenantOptions::default()
                },
            )
            .expect("create alpha");
        router
            .create(
                "win3",
                &TenantOptions {
                    interval: Some(3),
                    ..TenantOptions::default()
                },
            )
            .expect("create win3");
        assert_eq!(router.len(), 3);

        for chunk in stream.chunks(71) {
            router.ingest(&Scope::All, chunk.to_vec()).expect("ingest");
        }
        let positions = router.flush_all();
        assert!(positions.iter().all(|(_, p)| *p == stream.len() as u64));

        // Each tenant is bit-identical to a standalone estimator run
        // under the tenant's resolved config.
        let base = base_serve().rept;
        let alpha_cfg = ReptConfig { seed: 99, ..base };
        let alpha_oracle = Rept::new(alpha_cfg).run_sequential(stream.iter().copied());
        let alpha = router.tenant("alpha").expect("alpha").snapshot();
        assert_eq!(alpha.global, alpha_oracle.global);
        assert_eq!(alpha.locals, alpha_oracle.locals);

        let win_cfg = IntervalEstimator::new(base).config_for(3);
        let win_oracle = Rept::new(win_cfg).run_sequential(stream.iter().copied());
        let win = router.tenant("win3").expect("win3").snapshot();
        assert_eq!(win.global, win_oracle.global);
        assert_ne!(win_cfg.seed, base.seed, "interval seed is derived");

        // Cross-tenant aggregation covers every tenant.
        let stats = router.aggregate_stats();
        assert_eq!(stats.tenants, 3);
        assert_eq!(stats.position, 3 * stream.len() as u64);
        let merged = router.merged_top_k(10);
        assert!(merged.len() <= 10);
        for pair in merged.windows(2) {
            assert!(pair[0].2 >= pair[1].2, "descending: {merged:?}");
        }

        let finals = router.shutdown();
        assert_eq!(finals.len(), 3);
        let alpha_final = finals.iter().find(|(n, _)| n == "alpha").unwrap();
        assert_eq!(alpha_final.1.global, alpha_oracle.global);
    }

    #[test]
    fn named_scope_feeds_only_named_tenants() {
        let stream = stream();
        let router = TenantRouter::start(RouterConfig::new(base_serve())).expect("start");
        router
            .create("alpha", &TenantOptions::default())
            .expect("create");
        router
            .ingest(&Scope::Named(vec!["alpha".into()]), stream[..50].to_vec())
            .expect("ingest");
        router.flush_all();
        assert_eq!(router.tenant("alpha").unwrap().position(), 50);
        assert_eq!(router.tenant(DEFAULT_TENANT).unwrap().position(), 0);
        // Unknown names fail before feeding anyone.
        let err = router
            .ingest(
                &Scope::Named(vec!["alpha".into(), "ghost".into()]),
                stream[50..60].to_vec(),
            )
            .unwrap_err();
        assert!(err.contains("ghost"), "{err}");
        router.flush_all();
        assert_eq!(router.tenant("alpha").unwrap().position(), 50);
        router.shutdown();
    }

    #[test]
    fn create_validates_and_rejects_duplicates() {
        let router = TenantRouter::start(RouterConfig::new(base_serve())).expect("start");
        assert!(router.create("9bad", &TenantOptions::default()).is_err());
        assert!(router
            .create(DEFAULT_TENANT, &TenantOptions::default())
            .is_err());
        router.create("a", &TenantOptions::default()).expect("ok");
        assert!(router.create("a", &TenantOptions::default()).is_err());
        let err = router
            .create(
                "b",
                &TenantOptions {
                    m: Some(1),
                    ..TenantOptions::default()
                },
            )
            .unwrap_err();
        assert!(err.contains("m must be"), "{err}");
        // In-process callers hit the same seed/interval exclusivity the
        // wire parser enforces — no silent seed override.
        let err = router
            .create(
                "c",
                &TenantOptions {
                    seed: Some(9),
                    interval: Some(2),
                    ..TenantOptions::default()
                },
            )
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        router.shutdown();
    }

    #[test]
    fn drop_tenant_removes_core_and_directory() {
        let root = temp_root("drop");
        std::fs::remove_dir_all(&root).ok();
        let router =
            TenantRouter::start(RouterConfig::new(base_serve()).with_root_dir(root.clone()))
                .expect("start");
        router
            .create("gone", &TenantOptions::default())
            .expect("create");
        assert!(root.join("gone").join(TENANT_META).is_file());
        router.drop_tenant("gone").expect("drop");
        assert!(!router.contains("gone"));
        assert!(!root.join("gone").exists(), "directory removed");
        assert!(router.drop_tenant("gone").is_err(), "already gone");
        assert!(router.drop_tenant(DEFAULT_TENANT).is_err(), "protected");
        router.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn startup_sweeps_leftover_trash_directories() {
        let root = temp_root("trash-sweep");
        std::fs::remove_dir_all(&root).ok();
        // A crash between `drop_tenant`'s rename and its remove_dir_all
        // leaves a retired directory behind; simulate one.
        let trash = root.join(".trash-gone-0");
        std::fs::create_dir_all(trash.join("nested")).expect("mk trash");
        std::fs::write(trash.join("serve.rpck"), b"stale").expect("trash file");
        // A dot-file that is *not* a trash dir must survive the sweep.
        std::fs::write(root.join(".keep"), b"").expect("keep file");

        let router =
            TenantRouter::start(RouterConfig::new(base_serve()).with_root_dir(root.clone()))
                .expect("start");
        assert!(!trash.exists(), "retired directory swept at startup");
        assert!(root.join(".keep").is_file(), "unrelated dot-file kept");
        assert!(!router.contains("gone"), "trash never resurrected");
        router.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn router_stats_aggregate_journal_and_dlq() {
        let root = temp_root("journal-agg");
        std::fs::remove_dir_all(&root).ok();
        let cfg = RouterConfig::new(base_serve().with_journal()).with_root_dir(root.clone());
        let router = TenantRouter::start(cfg).expect("start");
        router
            .create("alpha", &TenantOptions::default())
            .expect("create");
        router
            .ingest(&Scope::All, stream()[..60].to_vec())
            .expect("ingest");
        router.flush_all(); // durability stats refresh at publish points
        router
            .tenant("alpha")
            .unwrap()
            .dead_letter("INGEST bogus", "unparsable");
        let stats = router.aggregate_stats();
        assert_eq!(stats.tenants, 2);
        assert!(stats.journal_bytes > 0, "both tenants journaled");
        assert_eq!(stats.dlq, 1, "alpha's dead letter counted");
        router.checkpoint_all().expect("checkpoint");
        assert_eq!(
            router.aggregate_stats().journal_bytes,
            0,
            "checkpoints truncate every tenant's journal"
        );
        router.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn router_wide_kill_resume_restores_every_tenant() {
        let stream = stream();
        let root = temp_root("resume");
        std::fs::remove_dir_all(&root).ok();
        let cfg = RouterConfig::new(base_serve()).with_root_dir(root.clone());

        let router = TenantRouter::start(cfg.clone()).expect("start");
        router
            .create(
                "pw",
                &TenantOptions {
                    engine: Some(Engine::PerWorker),
                    ..TenantOptions::default()
                },
            )
            .expect("create pw");
        router
            .create(
                "win1",
                &TenantOptions {
                    interval: Some(1),
                    ..TenantOptions::default()
                },
            )
            .expect("create win1");
        let split = stream.len() / 2;
        router
            .ingest(&Scope::All, stream[..split].to_vec())
            .expect("ingest");
        let ckpts = router.checkpoint_all().expect("checkpoint all");
        assert!(ckpts.iter().all(|(_, p)| *p == split as u64));
        drop(router.shutdown()); // clean shutdown ≙ kill after checkpoint

        let resumed = TenantRouter::start(cfg).expect("resume");
        assert_eq!(resumed.len(), 3, "all tenants resurrected");
        let names = resumed.names();
        assert_eq!(
            names.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec![DEFAULT_TENANT, "pw", "win1"]
        );
        assert_eq!(
            names.iter().find(|(n, _)| n == "win1").unwrap().1,
            Some(1),
            "interval index survives the restart"
        );
        for (_, core) in resumed.cores() {
            assert_eq!(core.position(), split as u64, "resumed at the checkpoint");
        }
        resumed
            .ingest(&Scope::All, stream[split..].to_vec())
            .expect("replay");
        resumed.flush_all();

        let base = base_serve().rept;
        let default_oracle = Rept::new(base).run_sequential(stream.iter().copied());
        let snap = resumed.tenant(DEFAULT_TENANT).unwrap().snapshot();
        assert_eq!(snap.global, default_oracle.global);
        assert_eq!(snap.locals, default_oracle.locals);
        let win_cfg = IntervalEstimator::new(base).config_for(1);
        let win_oracle = Rept::new(win_cfg).run_sequential(stream.iter().copied());
        assert_eq!(
            resumed.tenant("win1").unwrap().snapshot().global,
            win_oracle.global
        );
        resumed.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn manifest_fallback_recovers_from_checkpoint_header() {
        let root = temp_root("meta-fallback");
        std::fs::remove_dir_all(&root).ok();
        let cfg = RouterConfig::new(base_serve()).with_root_dir(root.clone());
        let router = TenantRouter::start(cfg.clone()).expect("start");
        router
            .create(
                "hash",
                &TenantOptions {
                    engine: Some(Engine::FusedHash),
                    seed: Some(5),
                    ..TenantOptions::default()
                },
            )
            .expect("create");
        router
            .tenant("hash")
            .unwrap()
            .ingest(stream()[..40].to_vec())
            .expect("ingest");
        router.checkpoint_all().expect("checkpoint");
        router.shutdown();
        // Simulate a pre-manifest directory.
        std::fs::remove_file(root.join("hash").join(TENANT_META)).expect("remove meta");

        let resumed = TenantRouter::start(cfg).expect("resume");
        {
            // Scoped: `shutdown` drains outstanding tenant handles.
            let core = resumed.tenant("hash").expect("recovered from checkpoint");
            assert_eq!(core.config().engine, Engine::FusedHash);
            assert_eq!(core.config().rept.seed, 5);
            assert_eq!(core.position(), 40);
        }
        resumed.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
}
