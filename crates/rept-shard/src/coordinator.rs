//! The shard coordinator: fans the stream to group-sliced shard
//! servers and recombines their raw counters into the bit-identical
//! single-process estimate.
//!
//! ## Why group-wise sharding is exact
//!
//! REPT's processors are partitioned into hash groups that never
//! communicate while the stream runs — every group sees the whole
//! stream and maintains its own counters; only [`Rept::finalize_groups`]
//! combines them. So a cluster that gives each shard a round-robin
//! slice of the groups ([`rept_core::GroupSlice`]), broadcasts every
//! edge to every
//! shard, and exchanges the finished *integer* counters
//! ([`GroupAggregate`]) performs exactly the computation of one big
//! process — no approximation, no float summation-order drift. The
//! shard-equivalence suite (`tests/shard.rs`) asserts the reply bytes.
//!
//! ## Degradation contract
//!
//! A dead shard removes its groups, not the service: the survivors
//! still form a *valid* REPT configuration with fewer processors
//! (`c' = Σ surviving group sizes`, same `m`, same per-group counters),
//! so the coordinator re-bases the surviving aggregates onto that
//! smaller layout and keeps answering — with the honestly wider
//! confidence interval of the smaller `c'`. `HEALTH` reports
//! `state=degraded shards=<k>/<n>` instead of erroring. Batches fanned
//! while degraded are buffered; a revived shard (restored from its own
//! checkpoint + journal) replays the buffered tail and rejoins.

use std::collections::BTreeSet;
use std::sync::Arc;

use rept_core::{Engine, GroupAggregate, Rept, ReptConfig};
use rept_graph::edge::Edge;
use rept_serve::snapshot::Snapshot;
use rept_serve::{Client, ServeCore};

/// One downstream shard endpoint, speaking the v2 protocol either
/// in-process (tests, single-binary deployments) or over TCP.
#[derive(Debug)]
pub enum ShardLink {
    /// An in-process [`ServeCore`] handle — the transport-free link the
    /// equivalence tests drive.
    Local(Arc<ServeCore>),
    /// A TCP connection to a shard server ([`rept_serve::Server`]).
    Tcp(Box<Client>),
}

impl ShardLink {
    /// Wraps an in-process serving core.
    pub fn local(core: Arc<ServeCore>) -> Self {
        Self::Local(core)
    }

    /// Connects to a shard server over TCP.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self::Tcp(Box::new(Client::connect(addr)?)))
    }

    /// Sends a batch of edges to the shard (blocking, with the link's
    /// backpressure semantics).
    ///
    /// # Errors
    ///
    /// A description of the refusal or transport failure.
    pub fn ingest(&mut self, edges: &[Edge]) -> Result<(), String> {
        match self {
            Self::Local(core) => core.ingest(edges.to_vec()).map_err(|e| e.to_string()),
            Self::Tcp(client) => client.ingest(edges).map(|_| ()).map_err(|e| e.to_string()),
        }
    }

    /// Barrier + aggregate exchange: applies everything queued on the
    /// shard, then returns its position and kept-group counters.
    ///
    /// # Errors
    ///
    /// A description of the failure.
    pub fn aggregates(&mut self) -> Result<(u64, Vec<GroupAggregate>), String> {
        match self {
            Self::Local(core) => core.aggregates(),
            Self::Tcp(client) => client.aggregates().map_err(|e| e.to_string()),
        }
    }

    /// Checkpoints the shard; returns the checkpointed position.
    ///
    /// # Errors
    ///
    /// A description of the failure.
    pub fn checkpoint(&mut self) -> Result<u64, String> {
        match self {
            Self::Local(core) => core.checkpoint(),
            Self::Tcp(client) => client.checkpoint().map_err(|e| e.to_string()),
        }
    }

    /// The shard's Prometheus-style metrics exposition body.
    ///
    /// # Errors
    ///
    /// A description of the failure.
    pub fn metrics_body(&mut self) -> Result<String, String> {
        match self {
            Self::Local(core) => {
                let scrape = rept_serve::TenantScrape {
                    tenant: "default".into(),
                    engine: core.config().engine.name(),
                    health: core.health(),
                    metrics: Arc::clone(core.metrics()),
                };
                Ok(rept_serve::render_exposition(&[scrape], false))
            }
            Self::Tcp(client) => client.metrics().map_err(|e| e.to_string()),
        }
    }
}

/// Coordinator configuration. The `rept`/`engine`/`snapshot_every`/
/// `top_k` values must match what a standalone [`ServeCore`] would use
/// for the coordinator's replies to be byte-identical to it.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// The *full* estimator configuration (the shards each run a slice
    /// of it).
    pub rept: ReptConfig,
    /// The engine label advertised in snapshots (the shards do the
    /// actual executing).
    pub engine: Engine,
    /// Edges between automatic snapshot publications — the same cadence
    /// knob as [`rept_serve::ServeConfig::snapshot_every`], replicated
    /// here so `seq=` counters match a standalone core's.
    pub snapshot_every: u64,
    /// Size of the top-k index kept in each snapshot.
    pub top_k: usize,
}

impl CoordinatorConfig {
    /// Defaults mirroring [`rept_serve::ServeConfig::new`]: snapshot
    /// every 8192 edges, top-100 index, default engine.
    pub fn new(rept: ReptConfig) -> Self {
        Self {
            rept,
            engine: Engine::default(),
            snapshot_every: 8192,
            top_k: 100,
        }
    }

    /// Selects the advertised engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the snapshot publication interval (edges).
    pub fn with_snapshot_every(mut self, edges: u64) -> Self {
        self.snapshot_every = edges.max(1);
        self
    }

    /// Sets the top-k index size.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }
}

/// Cluster pressure readings — the coordinator's `HEALTH` payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterHealth {
    /// Shards currently answering.
    pub alive: usize,
    /// Shards the cluster was started with.
    pub total: usize,
    /// The coordinator's stream position.
    pub position: u64,
}

impl ClusterHealth {
    /// Whether any shard is down (queries answer from the survivors).
    pub fn degraded(&self) -> bool {
        self.alive < self.total
    }
}

/// `OK HEALTH …` reply for the coordinator's `HEALTH` verb — the typed
/// degradation contract: `state=degraded shards=<k>/<n>` while any
/// shard is down, never an error.
pub fn format_cluster_health(h: &ClusterHealth) -> String {
    format!(
        "OK HEALTH tenant=default state={} shards={}/{} position={}",
        if h.degraded() { "degraded" } else { "ok" },
        h.alive,
        h.total,
        h.position,
    )
}

#[derive(Debug)]
struct ShardHandle {
    link: ShardLink,
    alive: bool,
    /// The group starts this shard owns — a revived replacement must
    /// own the same ones.
    starts: Vec<usize>,
}

/// The coordinator: owns N shard links, fans every ingest batch to all
/// of them, and answers the v2 query surface by recombining their
/// aggregate exchanges. Single-tenant by design — each shard runs one
/// sliced core; multi-tenancy composes *above* this tier, not below.
#[derive(Debug)]
pub struct ShardCoordinator {
    cfg: CoordinatorConfig,
    rept: Rept,
    group_count: usize,
    shards: Vec<ShardHandle>,
    position: u64,
    seq: u64,
    checkpoints: u64,
    since_snapshot: u64,
    last_published: Option<(u64, u64)>,
    published: Arc<Snapshot>,
    /// Batches fanned while any shard was dead, with their start
    /// positions — the replay source for [`Self::revive_shard`].
    replay: Vec<(u64, Vec<Edge>)>,
}

/// The group starts of a configuration's layout, in layout order.
fn expected_starts(cfg: &ReptConfig) -> Vec<usize> {
    let m = cfg.m as usize;
    let c = cfg.c as usize;
    if c <= m {
        return vec![0];
    }
    let c1 = c / m;
    let mut starts: Vec<usize> = (0..c1).map(|g| g * m).collect();
    if !c.is_multiple_of(m) {
        starts.push(c1 * m);
    }
    starts
}

/// Renumbers a *partial* set of group aggregates onto the smaller
/// configuration they form on their own: same `m`, `c' = Σ sizes`,
/// full groups packed before the remainder (their original start order
/// already guarantees that). The result is a complete aggregate set
/// for the returned config, so `finalize_groups` applies unchanged.
fn rebase_survivors(
    base: &ReptConfig,
    mut aggregates: Vec<GroupAggregate>,
) -> (ReptConfig, Vec<GroupAggregate>) {
    aggregates.sort_unstable_by_key(|g| g.start);
    let c: u64 = aggregates.iter().map(|g| g.tau.len() as u64).sum();
    let mut next = 0usize;
    for g in &mut aggregates {
        let size = g.tau.len();
        g.start = next;
        next += size;
    }
    let cfg = ReptConfig {
        m: base.m,
        c,
        seed: base.seed,
        track_locals: base.track_locals,
        track_eta: base.track_eta,
        eta_mode: base.eta_mode,
    };
    (cfg, aggregates)
}

impl ShardCoordinator {
    /// Starts the coordinator over the given shard links.
    ///
    /// Interrogates every shard (an `AGGREGATE` barrier each) and
    /// validates the deployment: at most one shard per hash group, the
    /// shards' slices together cover the configuration's layout exactly
    /// once, and every shard stands at the same stream position (resume
    /// each shard from its checkpoint + journal first). Publishes the
    /// initial snapshot (`seq=0`), exactly like a standalone core.
    ///
    /// # Errors
    ///
    /// A description of the deployment violation or shard failure.
    pub fn start(cfg: CoordinatorConfig, links: Vec<ShardLink>) -> Result<Self, String> {
        if links.is_empty() {
            return Err("a cluster needs at least one shard".into());
        }
        let group_count = cfg.rept.group_count();
        if links.len() as u64 > group_count {
            return Err(format!(
                "{} shards but the configuration has only {group_count} hash group(s); \
                 extra shards would own nothing",
                links.len()
            ));
        }
        let mut shards = Vec::with_capacity(links.len());
        let mut position: Option<u64> = None;
        let mut owned = BTreeSet::new();
        let mut initial: Vec<GroupAggregate> = Vec::new();
        for (i, mut link) in links.into_iter().enumerate() {
            let (pos, aggregates) = link.aggregates().map_err(|e| format!("shard {i}: {e}"))?;
            match position {
                None => position = Some(pos),
                Some(p) if p == pos => {}
                Some(p) => {
                    return Err(format!(
                        "shard {i} is at position {pos} but earlier shards are at {p}; \
                         restore every shard to a common position before starting"
                    ));
                }
            }
            let starts: Vec<usize> = aggregates.iter().map(|g| g.start).collect();
            for &s in &starts {
                if !owned.insert(s) {
                    return Err(format!("group start {s} is owned by two shards"));
                }
            }
            initial.extend(aggregates);
            shards.push(ShardHandle {
                link,
                alive: true,
                starts,
            });
        }
        let expected: BTreeSet<usize> = expected_starts(&cfg.rept).into_iter().collect();
        if owned != expected {
            return Err(format!(
                "shard slices cover group starts {owned:?} but the configuration's layout \
                 is {expected:?}"
            ));
        }
        let position = position.expect("at least one shard");
        let rept = Rept::new(cfg.rept);
        initial.sort_unstable_by_key(|g| g.start);
        let snapshot = Self::assemble(&cfg, &rept, initial, position, 0, 0);
        Ok(Self {
            cfg,
            rept,
            group_count: group_count as usize,
            shards,
            position,
            seq: 0,
            checkpoints: 0,
            since_snapshot: 0,
            last_published: Some((position, 0)),
            published: Arc::new(snapshot),
            replay: Vec::new(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.cfg
    }

    /// Shards the cluster was started with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shards currently answering.
    pub fn alive_count(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// Cluster pressure readings — the `HEALTH` payload.
    pub fn health(&self) -> ClusterHealth {
        ClusterHealth {
            alive: self.alive_count(),
            total: self.shards.len(),
            position: self.position,
        }
    }

    /// The latest published snapshot — the query path for
    /// `QUERY GLOBAL` / `QUERY LOCAL` / `TOPK` / `STATS`.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published)
    }

    /// The coordinator's stream position (edges fanned out).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Fans a batch to every live shard and advances the publication
    /// cadence — the same `snapshot_every` arithmetic as a standalone
    /// core's ingest loop, so `seq=` counters stay identical. A shard
    /// that refuses the batch is marked dead (degradation, not outage);
    /// batches are buffered for its revival from the moment any shard
    /// is down. Returns the number of edges accepted.
    ///
    /// # Errors
    ///
    /// Only when *no* shard is alive to accept the batch.
    pub fn ingest(&mut self, edges: Vec<Edge>) -> Result<usize, String> {
        if edges.is_empty() {
            return Ok(0);
        }
        if self.alive_count() == 0 {
            return Err(format!(
                "all {} shards are down; batch refused",
                self.shards.len()
            ));
        }
        let n = edges.len();
        let start = self.position;
        let mut buffered = self.shards.iter().any(|s| !s.alive);
        if buffered {
            self.replay.push((start, edges.clone()));
        }
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !shard.alive {
                continue;
            }
            if let Err(e) = shard.link.ingest(&edges) {
                // The shard may have applied a prefix of the batch; its
                // own journal knows exactly how much. Buffer from this
                // batch on so a revival can replay the difference.
                shard.alive = false;
                eprintln!("rept-shard: shard {i} refused ingest ({e}); marked dead");
                if !buffered {
                    self.replay.push((start, edges.clone()));
                    buffered = true;
                }
            }
        }
        self.position += n as u64;
        self.since_snapshot += n as u64;
        if self.since_snapshot >= self.cfg.snapshot_every {
            self.publish();
            self.since_snapshot = 0;
        }
        Ok(n)
    }

    /// Barrier: collects a fresh aggregate exchange, publishes, returns
    /// the position — the coordinator's `FLUSH`.
    pub fn flush(&mut self) -> u64 {
        self.publish();
        self.since_snapshot = 0;
        self.position
    }

    /// Orchestrated checkpoint: every live shard checkpoints its own
    /// slice (write-then-rename on its own disk), and the cluster
    /// counter advances only when all of them succeed — so a reported
    /// checkpoint means the *whole* cluster state at this position is
    /// durable and an all-shard restart resumes bit-identically.
    ///
    /// # Errors
    ///
    /// The first shard failure (the cluster counter does not advance).
    pub fn checkpoint(&mut self) -> Result<u64, String> {
        let expect = self.position;
        let mut result = Ok(expect);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !shard.alive {
                continue;
            }
            match shard.link.checkpoint() {
                Ok(pos) if pos == expect => {}
                Ok(pos) => {
                    result = Err(format!(
                        "shard {i} checkpointed position {pos}, expected {expect}"
                    ));
                    break;
                }
                Err(e) => {
                    result = Err(format!("shard {i}: {e}"));
                    break;
                }
            }
        }
        self.checkpoints += u64::from(result.is_ok());
        self.publish();
        self.since_snapshot = 0;
        result
    }

    /// Barrier + merged aggregate exchange: the union of every live
    /// shard's kept-group counters in layout order, with the
    /// coordinator's position — the same payload a standalone core's
    /// `AGGREGATE` returns, which makes coordinators composable.
    ///
    /// # Errors
    ///
    /// Only when no shard answers.
    pub fn aggregates(&mut self) -> Result<(u64, Vec<GroupAggregate>), String> {
        let aggregates = self.collect()?;
        Ok((self.position, aggregates))
    }

    /// Test/operations hook: marks a shard dead without waiting for an
    /// I/O failure — the coordinator stops fanning to it and starts
    /// buffering for its revival.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn kill_shard(&mut self, index: usize) {
        self.shards[index].alive = false;
    }

    /// Rejoins a restarted shard: validates it owns the same groups it
    /// did before, replays the buffered batches above the shard's own
    /// (checkpoint + journal restored) position, and marks it alive.
    /// Once every shard is back, the replay buffer is dropped.
    ///
    /// # Errors
    ///
    /// When the shard owns different groups, stands ahead of the
    /// coordinator, or is too far behind for the buffer to cover (its
    /// journal must close that gap first).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn revive_shard(&mut self, index: usize, mut link: ShardLink) -> Result<(), String> {
        let (pos, aggregates) = link.aggregates().map_err(|e| format!("revive: {e}"))?;
        let starts: Vec<usize> = aggregates.iter().map(|g| g.start).collect();
        if starts != self.shards[index].starts {
            return Err(format!(
                "revived shard owns group starts {starts:?}, expected {:?}",
                self.shards[index].starts
            ));
        }
        if pos > self.position {
            return Err(format!(
                "revived shard is at position {pos}, ahead of the cluster at {}",
                self.position
            ));
        }
        if pos < self.position {
            let covered_from = self.replay.first().map_or(self.position, |(s, _)| *s);
            if pos < covered_from {
                return Err(format!(
                    "revived shard is at position {pos} but the replay buffer starts at \
                     {covered_from}; restore the shard from its journal first"
                ));
            }
            for (start, batch) in &self.replay {
                let end = start + batch.len() as u64;
                if end <= pos {
                    continue;
                }
                let skip = pos.saturating_sub(*start) as usize;
                link.ingest(&batch[skip..])
                    .map_err(|e| format!("revive replay: {e}"))?;
            }
        }
        self.shards[index].link = link;
        self.shards[index].alive = true;
        if self.shards.iter().all(|s| s.alive) {
            self.replay.clear();
        }
        // Republish immediately: the restored groups (and the narrower
        // confidence interval they bring back) should be visible without
        // waiting out the cadence — the seq-guard would otherwise keep
        // the degraded snapshot current until the next position change.
        self.last_published = None;
        self.publish();
        Ok(())
    }

    /// Collects the aggregate exchange from every live shard, in layout
    /// order. A shard that fails mid-collection is marked dead and
    /// skipped — degradation, not outage.
    fn collect(&mut self) -> Result<Vec<GroupAggregate>, String> {
        let expect = self.position;
        let mut all: Vec<GroupAggregate> = Vec::new();
        let mut any = false;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !shard.alive {
                continue;
            }
            match shard.link.aggregates() {
                Ok((pos, aggregates)) if pos == expect => {
                    all.extend(aggregates);
                    any = true;
                }
                Ok((pos, _)) => {
                    shard.alive = false;
                    eprintln!(
                        "rept-shard: shard {i} is at position {pos}, expected {expect}; \
                         marked dead"
                    );
                }
                Err(e) => {
                    shard.alive = false;
                    eprintln!("rept-shard: shard {i} aggregate exchange failed ({e}); marked dead");
                }
            }
        }
        if !any {
            return Err(format!(
                "all {} shards are down; no aggregates to answer from",
                self.shards.len()
            ));
        }
        all.sort_unstable_by_key(|g| g.start);
        Ok(all)
    }

    /// Publishes a fresh snapshot from a full aggregate exchange, with
    /// the standalone core's seq-guard: an unchanged (position,
    /// checkpoints) pair republishes nothing and `seq` stays put. When
    /// every shard is down the previous snapshot simply stays current.
    fn publish(&mut self) {
        if self.last_published == Some((self.position, self.checkpoints)) {
            return;
        }
        let Ok(aggregates) = self.collect() else {
            return;
        };
        self.seq += 1;
        let snapshot = Self::assemble(
            &self.cfg,
            &self.rept,
            aggregates,
            self.position,
            self.seq,
            self.checkpoints,
        );
        self.published = Arc::new(snapshot);
        self.last_published = Some((self.position, self.checkpoints));
    }

    /// Combines one full or partial aggregate exchange into a snapshot.
    /// A complete set goes through the full configuration's
    /// `finalize_groups` — bit-identical to the standalone core. A
    /// partial (degraded) set is re-based onto the surviving smaller
    /// configuration first, whose estimate is still exactly valid REPT
    /// — just with the wider interval of fewer processors.
    fn assemble(
        cfg: &CoordinatorConfig,
        rept: &Rept,
        aggregates: Vec<GroupAggregate>,
        position: u64,
        seq: u64,
        checkpoints: u64,
    ) -> Snapshot {
        let full = aggregates.len() == cfg.rept.group_count() as usize;
        let (effective, estimate) = if full {
            (cfg.rept, rept.finalize_groups(aggregates))
        } else {
            let (survivor_cfg, rebased) = rebase_survivors(&cfg.rept, aggregates);
            let estimate = Rept::new(survivor_cfg).finalize_groups(rebased);
            (survivor_cfg, estimate)
        };
        Snapshot::from_estimate(
            &estimate,
            &effective,
            cfg.engine,
            position,
            seq,
            checkpoints,
            cfg.top_k,
        )
    }

    /// Number of hash groups in the full configuration.
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Every live shard's metrics exposition body, keyed by shard
    /// index. A shard that fails the scrape is skipped (scrapes must
    /// not change cluster state, so it is *not* marked dead here).
    pub fn metrics_bodies(&mut self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if !shard.alive {
                continue;
            }
            if let Ok(body) = shard.link.metrics_body() {
                out.push((i, body));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rept_core::GroupSlice;
    use rept_serve::{ServeConfig, ServeCore};

    fn local_links(cfg: ReptConfig, shards: u32) -> Vec<ShardLink> {
        (0..shards)
            .map(|i| {
                let slice = GroupSlice::new(i, shards);
                let core = ServeCore::start(ServeConfig::new(cfg).with_group_slice(slice))
                    .expect("shard core");
                ShardLink::local(Arc::new(core))
            })
            .collect()
    }

    #[test]
    fn layout_starts_match_config_arithmetic() {
        assert_eq!(expected_starts(&ReptConfig::new(10, 7)), vec![0]);
        assert_eq!(expected_starts(&ReptConfig::new(10, 30)), vec![0, 10, 20]);
        assert_eq!(
            expected_starts(&ReptConfig::new(10, 32)),
            vec![0, 10, 20, 30]
        );
    }

    #[test]
    fn rebase_packs_survivors_contiguously() {
        let base = ReptConfig::new(3, 11).with_seed(9); // groups: 0..3, 3..6, 9..11(r)
        let g = |start: usize, size: usize| GroupAggregate {
            start,
            tau: vec![0; size],
            stored: vec![0; size],
            bytes: 0,
            eta_total: 0,
            tau_v: None,
            eta_v: None,
        };
        // Survivors arrive out of order; the remainder keeps last place.
        let (cfg, rebased) = rebase_survivors(&base, vec![g(9, 2), g(0, 3)]);
        assert_eq!(cfg.c, 5);
        assert_eq!(cfg.m, 3);
        assert_eq!(cfg.seed, 9);
        assert_eq!(
            rebased.iter().map(|a| a.start).collect::<Vec<_>>(),
            vec![0, 3]
        );
    }

    #[test]
    fn start_rejects_bad_deployments() {
        let cfg = ReptConfig::new(2, 8).with_seed(1); // 4 groups
        let err = ShardCoordinator::start(CoordinatorConfig::new(cfg), Vec::new());
        assert!(err.is_err());
        // More shards than groups (the count guard fires before any
        // shard is interrogated, so unsliced cores suffice here).
        let five = (0..5)
            .map(|_| {
                let core = ServeCore::start(ServeConfig::new(cfg)).expect("core");
                ShardLink::local(Arc::new(core))
            })
            .collect();
        let err = ShardCoordinator::start(CoordinatorConfig::new(cfg), five)
            .expect_err("5 shards over 4 groups");
        assert!(err.contains("hash group"), "{err}");
        // Overlapping slices: two shards both claiming the full layout.
        let overlapping = (0..2)
            .map(|_| {
                let core = ServeCore::start(ServeConfig::new(cfg)).expect("core");
                ShardLink::local(Arc::new(core))
            })
            .collect();
        let err = ShardCoordinator::start(CoordinatorConfig::new(cfg), overlapping)
            .expect_err("overlapping slices");
        assert!(err.contains("owned by two shards"), "{err}");
        // A gap: one sliced shard alone does not cover the layout.
        let one_of_two = vec![local_links(cfg, 2).remove(0)];
        let err = ShardCoordinator::start(CoordinatorConfig::new(cfg), one_of_two)
            .expect_err("gap in coverage");
        assert!(err.contains("layout"), "{err}");
    }

    #[test]
    fn degraded_cluster_answers_and_reports() {
        let cfg = ReptConfig::new(2, 8).with_seed(7).with_locals(true);
        let mut coord = ShardCoordinator::start(CoordinatorConfig::new(cfg), local_links(cfg, 2))
            .expect("start");
        let edges: Vec<Edge> = (0..40u32)
            .flat_map(|i| {
                [
                    Edge::new(i % 7, (i + 1) % 7),
                    Edge::new((i + 1) % 7, (i + 2) % 7),
                    Edge::new(i % 7, (i + 2) % 7),
                ]
            })
            .collect();
        coord.ingest(edges.clone()).expect("ingest");
        coord.flush();
        assert!(!coord.health().degraded());
        let full = coord.snapshot();
        assert_eq!(full.c, 8);

        coord.kill_shard(1);
        coord.ingest(edges).expect("degraded ingest still accepted");
        let position = coord.flush();
        let health = coord.health();
        assert!(health.degraded());
        assert_eq!((health.alive, health.total), (1, 2));
        assert_eq!(
            format_cluster_health(&health),
            format!("OK HEALTH tenant=default state=degraded shards=1/2 position={position}")
        );
        // The surviving half answers as a smaller, valid configuration.
        let degraded = coord.snapshot();
        assert_eq!(degraded.c, 4);
        assert_eq!(degraded.position, position);
    }
}
