//! **rept-shard** — the sharded distributed tier: a coordinator over
//! the v2 wire protocol, bit-identical to single-process serving.
//!
//! REPT's hash groups never communicate while the stream runs, so a
//! cluster that (1) gives each shard server a round-robin **slice of
//! the groups** ([`rept_core::GroupSlice`]), (2) broadcasts every edge
//! to every shard, and (3) recombines the shards' raw *integer*
//! counters ([`rept_core::GroupAggregate`], carried by the `AGGREGATE`
//! verb) through [`rept_core::Rept::finalize_groups`] computes **the
//! same bytes** as one big process — the shard-equivalence suite
//! (`tests/shard.rs`) asserts reply-line equality against a standalone
//! [`rept_serve::ServeCore`] for every engine and shard count.
//!
//! * [`coordinator::ShardCoordinator`] — owns N [`coordinator::ShardLink`]s
//!   (in-process [`rept_serve::ServeCore`] handles or TCP
//!   [`rept_serve::Client`]s — both speak the same protocol), fans
//!   ingest batches to all of them, replicates the standalone core's
//!   snapshot cadence so `seq=`/`checkpoints=` counters match, and
//!   orchestrates cluster-wide checkpoints (the counter advances only
//!   when *every* shard's slice is durable).
//! * [`server::CoordinatorServer`] — the TCP front-end: the same
//!   line protocol upstream, so a v2 client cannot tell a 16-shard
//!   cluster from one server. Cluster-specific behavior is confined to
//!   `HEALTH` (`state=degraded shards=<k>/<n>`) and typed `ERR`s for
//!   the verbs that don't distribute (tenancy, journal introspection).
//! * **Degradation, not outage** — a dead shard removes its groups;
//!   the survivors still form a valid smaller REPT configuration, so
//!   queries keep answering with the honestly wider confidence
//!   interval. Buffered batches replay into a revived shard
//!   ([`coordinator::ShardCoordinator::revive_shard`]).
//!
//! ```
//! use std::sync::Arc;
//! use rept_core::{GroupSlice, ReptConfig};
//! use rept_graph::edge::Edge;
//! use rept_serve::{ServeConfig, ServeCore};
//! use rept_shard::{CoordinatorConfig, ShardCoordinator, ShardLink};
//!
//! // c=8, m=2 → 4 hash groups, sliced round-robin across 2 shards.
//! let cfg = ReptConfig::new(2, 8).with_seed(7);
//! let links = (0..2u32)
//!     .map(|i| {
//!         let slice = GroupSlice::new(i, 2);
//!         let core =
//!             ServeCore::start(ServeConfig::new(cfg).with_group_slice(slice)).unwrap();
//!         ShardLink::local(Arc::new(core))
//!     })
//!     .collect();
//! let mut coord = ShardCoordinator::start(CoordinatorConfig::new(cfg), links).unwrap();
//! coord.ingest(vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]).unwrap();
//! assert_eq!(coord.flush(), 3);
//! assert!(coord.snapshot().global >= 0.0);
//! assert!(!coord.health().degraded());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod server;

pub use coordinator::{
    format_cluster_health, ClusterHealth, CoordinatorConfig, ShardCoordinator, ShardLink,
};
pub use server::CoordinatorServer;
