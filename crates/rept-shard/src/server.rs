//! The coordinator's TCP front-end: the same line protocol the shard
//! servers speak, served *above* them — a client cannot tell a cluster
//! from a single [`rept_serve::Server`] on the distributed verbs.
//!
//! The thread-pool/accept idiom mirrors [`rept_serve::server`]: N
//! handler threads each own a clone of the listener and serve one
//! connection at a time; an idle connection re-checks the stop flag on
//! a read timeout. Requests lock the one [`ShardCoordinator`] — the
//! coordinator's work per verb is a handful of line-protocol exchanges
//! with the shards, which is the serialization point by design (the
//! shards do the heavy lifting concurrently in their own processes).
//!
//! Verbs that don't distribute reply with typed errors instead of
//! pretending: tenancy (`TENANT *`, `USE` of anything but `default`,
//! scoped `INGEST`, `STATS *`, `TOPK k *`) because the coordinator is
//! single-tenant by design (run one cluster per tenant), and per-node
//! durability/observability introspection (`JOURNAL STATS`,
//! `DLQ REPLAY`, `TRACE TAIL`) because that state lives on the shards —
//! ask a shard server directly. `METRICS` *is* distributed: the reply
//! concatenates every live shard's exposition body under `# shard=<i>`
//! comment markers.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use rept_serve::protocol::{self, Command, Scope, DEFAULT_TENANT};
use rept_serve::LiveStats;

use crate::coordinator::{format_cluster_health, ShardCoordinator};

/// How often an idle connection re-checks the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Backoff after a failed `accept` — mirrors the serve front-end.
const ACCEPT_RETRY: Duration = Duration::from_millis(50);

/// Cap on how long a reply write may block on a stalled client.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// A running coordinator front-end. [`Self::shutdown`] stops accepting
/// and returns the coordinator (so the caller can drain or inspect the
/// cluster); a plain drop stops the acceptors too.
#[derive(Debug)]
pub struct CoordinatorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    coordinator: Arc<Mutex<ShardCoordinator>>,
    handlers: Vec<JoinHandle<()>>,
}

impl CoordinatorServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves the
    /// coordinator with `handlers` connection threads.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn start(
        coordinator: ShardCoordinator,
        addr: impl ToSocketAddrs,
        handlers: usize,
    ) -> std::io::Result<Self> {
        let coordinator = Arc::new(Mutex::new(coordinator));
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for i in 0..handlers.max(1) {
            let listener = listener.try_clone()?;
            let coordinator = Arc::clone(&coordinator);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rept-shard-handler-{i}"))
                    .spawn(move || accept_loop(listener, coordinator, stop))
                    .expect("spawn handler thread"),
            );
        }
        Ok(Self {
            addr,
            stop,
            coordinator,
            handlers: threads,
        })
    }

    /// The bound address (the port clients connect to).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// In-process access to the coordinator (tests drive `kill_shard` /
    /// `revive_shard` through this while clients talk TCP).
    pub fn coordinator(&self) -> &Mutex<ShardCoordinator> {
        &self.coordinator
    }

    /// Sets the stop flag, wakes every acceptor, joins the handlers.
    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for _ in 0..self.handlers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.handlers.drain(..) {
            h.join().expect("handler thread panicked");
        }
    }

    /// Stops accepting, joins the handler threads, and hands the
    /// coordinator back (the shards keep running — shut them down
    /// through their own servers/cores).
    pub fn shutdown(mut self) -> ShardCoordinator {
        self.stop_accepting();
        let coordinator = Arc::try_unwrap(std::mem::replace(
            &mut self.coordinator,
            Arc::new(Mutex::new(placeholder())),
        ));
        match coordinator {
            Ok(mutex) => mutex.into_inner().expect("coordinator lock poisoned"),
            Err(_) => unreachable!("handlers dropped their coordinator handles"),
        }
    }
}

/// A throwaway value for `shutdown`'s `mem::replace`; never observable.
fn placeholder() -> ShardCoordinator {
    use crate::coordinator::{CoordinatorConfig, ShardLink};
    use rept_core::ReptConfig;
    use rept_serve::{ServeConfig, ServeCore};
    let cfg = ReptConfig::new(2, 1);
    let core = ServeCore::start(ServeConfig::new(cfg)).expect("in-memory core");
    ShardCoordinator::start(
        CoordinatorConfig::new(cfg),
        vec![ShardLink::local(Arc::new(core))],
    )
    .expect("single-shard placeholder")
}

impl Drop for CoordinatorServer {
    fn drop(&mut self) {
        if !self.handlers.is_empty() {
            self.stop_accepting();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    coordinator: Arc<Mutex<ShardCoordinator>>,
    stop: Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = listener.accept() else {
            std::thread::sleep(ACCEPT_RETRY);
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection from `shutdown`
        }
        let _ = serve_connection(stream, &coordinator, &stop);
    }
}

fn serve_connection(
    stream: TcpStream,
    coordinator: &Mutex<ShardCoordinator>,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // The line buffer persists across timeout retries — `read_line` may
    // have consumed a partial line when the timer fired.
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                let (reply, close) = execute(&line, coordinator, stop);
                writer.write_all(reply.as_bytes())?;
                writer.write_all(b"\n")?;
                if close {
                    return Ok(());
                }
                line.clear();
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn lock(coordinator: &Mutex<ShardCoordinator>) -> MutexGuard<'_, ShardCoordinator> {
    coordinator.lock().expect("coordinator lock poisoned")
}

/// Parses and executes one request line against the coordinator. The
/// distributed verbs produce the same reply bytes a standalone server
/// would (shared format functions over the recombined snapshot); the
/// rest are typed errors documented in the module docs.
fn execute(line: &str, coordinator: &Mutex<ShardCoordinator>, stop: &AtomicBool) -> (String, bool) {
    let reply = match protocol::parse(line) {
        Ok(Command::Ingest(Scope::Current, edges)) => {
            let n = edges.len();
            match lock(coordinator).ingest(edges) {
                Ok(_) => format!("OK INGEST {n}"),
                Err(e) => format!("ERR {e}"),
            }
        }
        Ok(Command::Ingest(_, _)) => {
            "ERR scoped ingest is not distributed: the coordinator is single-tenant; \
             run one cluster per tenant"
                .into()
        }
        Ok(Command::QueryGlobal) => protocol::format_global(&lock(coordinator).snapshot()),
        Ok(Command::QueryLocal(v)) => protocol::format_local(&lock(coordinator).snapshot(), v),
        Ok(Command::TopK(k)) => protocol::format_top_k(&lock(coordinator).snapshot(), k),
        Ok(Command::Stats) => {
            // The coordinator keeps no journal/DLQ of its own — those
            // gauges are genuinely zero here, not unknown; durable state
            // lives on the shards (see `JOURNAL STATS` below).
            let live = LiveStats {
                stored_bytes: 0,
                journal_bytes: 0,
                journal_segments: 0,
                dlq: 0,
            };
            protocol::format_stats(&lock(coordinator).snapshot(), &live)
        }
        Ok(Command::Flush) => format!("OK FLUSH position={}", lock(coordinator).flush()),
        Ok(Command::Aggregate) => match lock(coordinator).aggregates() {
            Ok((position, groups)) => protocol::format_aggregate(position, &groups),
            Err(e) => format!("ERR {e}"),
        },
        Ok(Command::Checkpoint) => match lock(coordinator).checkpoint() {
            Ok(position) => format!("OK CHECKPOINT position={position}"),
            Err(e) => format!("ERR {e}"),
        },
        Ok(Command::Health) => format_cluster_health(&lock(coordinator).health()),
        Ok(Command::Use(name)) if name == DEFAULT_TENANT => "OK USING default".into(),
        Ok(Command::Use(name)) => format!(
            "ERR unknown tenant {name:?}: the coordinator serves only \"default\"; \
             run one cluster per tenant"
        ),
        Ok(Command::Metrics | Command::MetricsAll) => {
            let mut body = String::new();
            for (shard, exposition) in lock(coordinator).metrics_bodies() {
                body.push_str(&format!("# shard={shard}\n"));
                body.push_str(&exposition);
                body.push('\n');
            }
            protocol::format_metrics(body.trim_end_matches('\n'))
        }
        Ok(Command::TenantCreate(..) | Command::TenantList | Command::TenantDrop(_)) => {
            "ERR tenancy is not distributed: the coordinator is single-tenant; \
             run one cluster per tenant"
                .into()
        }
        Ok(Command::StatsAll | Command::TopKAll(_)) => {
            "ERR cross-tenant queries are not distributed: the coordinator is \
             single-tenant; run one cluster per tenant"
                .into()
        }
        Ok(Command::JournalStats) => {
            "ERR journal state lives on the shards; send JOURNAL STATS to a shard server".into()
        }
        Ok(Command::DlqReplay) => {
            "ERR dead-letter state lives on the shards; send DLQ REPLAY to a shard server".into()
        }
        Ok(Command::TraceTail(_)) => {
            "ERR trace rings live on the shards; send TRACE TAIL to a shard server".into()
        }
        Ok(Command::Shutdown) => {
            stop.store(true, Ordering::SeqCst);
            return ("OK BYE".into(), true);
        }
        Err(e) => format!("ERR {e}"),
    };
    (reply, false)
}
