//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this crate vendors the
//! subset of the Criterion API the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Throughput`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model (much simpler than real Criterion, adequate for
//! relative comparisons): after a warm-up, each benchmark runs `samples`
//! batches sized to last roughly `batch_ms` each, and reports the
//! **minimum** per-iteration time over batches — the standard way to strip
//! scheduler noise from micro-measurements. Environment knobs:
//! `CRITERION_SAMPLES` (default 10) and `CRITERION_BATCH_MS` (default 50).
//! Passing `--quick` (or running with `CRITERION_SAMPLES=1`) trades
//! precision for speed.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    samples: u32,
    batch: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let env_u64 = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Self {
            samples: if quick {
                1
            } else {
                env_u64("CRITERION_SAMPLES", 10) as u32
            },
            batch: Duration::from_millis(env_u64("CRITERION_BATCH_MS", if quick { 5 } else { 50 })),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            harness: self,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. edges) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A parameterised benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label from a function name and a parameter.
    pub fn new(name: &str, param: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// Label from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self(param.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    harness: &'a Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            harness: self.harness,
            best: Duration::MAX,
        };
        f(&mut b);
        self.report(&id.to_string(), b.best);
        self
    }

    /// Runs one benchmark closure with an input parameter.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            harness: self.harness,
            best: Duration::MAX,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.best);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, per_iter: Duration) {
        let ns = per_iter.as_secs_f64() * 1e9;
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("  {id}: {ns:.1} ns/iter ({rate:.3e} elem/s)");
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let rate = n as f64 / per_iter.as_secs_f64();
                println!("  {id}: {ns:.1} ns/iter ({rate:.3e} B/s)");
            }
            _ => println!("  {id}: {ns:.1} ns/iter"),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher<'a> {
    harness: &'a Criterion,
    best: Duration,
}

impl Bencher<'_> {
    /// Measures `f`, keeping the minimum per-iteration time over samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until it fills the
        // target duration, so short closures are timed over many runs.
        let mut iters: u64 = 1;
        let batch = self.harness.batch;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch || iters >= 1 << 30 {
                self.best = self.best.min(elapsed / iters as u32);
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                // Aim 20% past the target to cross it next round.
                ((iters as f64 * 1.2 * batch.as_secs_f64() / elapsed.as_secs_f64()) as u64)
                    .max(iters + 1)
            };
        }
        for _ in 1..self.harness.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.best = self.best.min(start.elapsed() / iters as u32);
        }
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
