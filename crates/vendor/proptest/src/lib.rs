//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no network access, so this crate vendors the
//! *subset* of the proptest API the workspace's property tests use:
//! [`Strategy`](strategy::Strategy) with `prop_map`, range/tuple/`any`
//! strategies, [`collection::vec`], the [`proptest!`] macro (with optional
//! `#![proptest_config(…)]`), and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs verbatim.
//! * **Deterministic seeding** — the RNG is seeded from the test's module
//!   path and name, so failures reproduce exactly across runs and
//!   machines. Set `PROPTEST_SEED=<u64>` to perturb the schedule.
//!
//! If the workspace ever gains registry access, deleting this crate and
//! depending on real `proptest` should be a drop-in change.

#![forbid(unsafe_code)]

/// Runner configuration and error types.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator state (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (typically the test's full path)
        /// plus the optional `PROPTEST_SEED` environment override.
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in label.bytes() {
                state = splitmix64(state ^ u64::from(b));
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    state = splitmix64(state ^ extra);
                }
            }
            Self { state }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(self.state)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift range reduction (bias negligible for tests).
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }

    fn splitmix64(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for the full domain of `T` (see [`crate::arbitrary`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Whole-domain generation for primitive types.
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `any::<T>()` — the strategy generating any `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a `Vec` of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The one-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a != b,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(concat!($(stringify!($arg), " = {:?}\n"),+), $(&$arg),+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{} failed: {e}\ninputs:\n{inputs}",
                        config.cases
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
