//! Interval-based network monitoring — the paper's motivating scenario.
//!
//! §II motivates REPT with "Π is a network packet stream collected on a
//! router in a time interval … one wants to compute global and local
//! triangle counts for each interval". Sudden triangle-density spikes are
//! a classic signature of coordinated behaviour (botnets, link farms).
//!
//! This example builds a stream of 8 equal intervals of background
//! traffic, injects a dense clique ("coordinated attack") into interval 5,
//! runs REPT independently per interval, and flags intervals whose
//! estimated triangle count exceeds a running robust threshold.
//!
//! Run: `cargo run --release --example anomaly_detection`

use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::{erdos_renyi, planted_cliques, stream_order, GeneratorConfig};
use rept::graph::edge::Edge;

const INTERVALS: usize = 8;
const EDGES_PER_INTERVAL: usize = 4_000;
const ATTACK_INTERVAL: usize = 5;

fn main() {
    // Background: sparse ER traffic, fresh seed per interval.
    let mut intervals: Vec<Vec<Edge>> = (0..INTERVALS)
        .map(|i| {
            let cfg = GeneratorConfig::new(2_000, 1000 + i as u64);
            erdos_renyi(&cfg, EDGES_PER_INTERVAL)
        })
        .collect();

    // The attack: a 30-clique (435 edges) among otherwise normal traffic.
    let attack_cfg = GeneratorConfig::new(2_000, 77);
    let clique = planted_cliques(&attack_cfg, 1, 30, 0);
    intervals[ATTACK_INTERVAL].truncate(EDGES_PER_INTERVAL - clique.len());
    intervals[ATTACK_INTERVAL].extend(clique);
    let attacked = stream_order(std::mem::take(&mut intervals[ATTACK_INTERVAL]), 5);
    intervals[ATTACK_INTERVAL] = attacked;

    println!("interval   τ̂(REPT)    τ(exact)   flagged");
    let mut history: Vec<f64> = Vec::new();
    let mut flagged = Vec::new();
    for (i, interval) in intervals.iter().enumerate() {
        // Fresh estimator per interval — the streaming state resets at
        // interval boundaries, exactly like the paper's router scenario.
        let rept = Rept::new(
            ReptConfig::new(4, 4)
                .with_seed(9 + i as u64)
                .with_locals(false),
        );
        let est = rept.run_sequential(interval.iter().copied()).global;
        let exact = GroundTruth::compute(interval).tau;

        // Robust threshold: 5× the median of past intervals (needs ≥ 2).
        let is_anomaly = if history.len() >= 2 {
            let mut sorted = history.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            est > 5.0 * median.max(1.0)
        } else {
            false
        };
        if is_anomaly {
            flagged.push(i);
        } else {
            history.push(est);
        }
        println!(
            "{i:>8}   {est:>8.0}   {exact:>9}   {}",
            if is_anomaly { "<-- ANOMALY" } else { "" }
        );
    }

    assert_eq!(
        flagged,
        vec![ATTACK_INTERVAL],
        "detector should flag exactly the attack interval"
    );
    println!("\nflagged interval {ATTACK_INTERVAL} — the planted 30-clique. Detection succeeded.");
}
