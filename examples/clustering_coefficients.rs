//! Streaming estimation of the global clustering coefficient.
//!
//! Clustering `C = 3τ / #wedges` is the classic consumer of triangle
//! counts (the paper's intro cites topic mining and community detection).
//! Wedge counts only need degrees — one cheap exact pass — while `τ`
//! comes from REPT, so the coefficient of a huge stream can be estimated
//! with sampling error on the numerator only.
//!
//! Run: `cargo run --release --example clustering_coefficients`

use rept::core::planning::{confidence_interval, IntervalMethod};
use rept::core::{Rept, ReptConfig};
use rept::exact::clustering::global_clustering;
use rept::gen::{watts_strogatz, GeneratorConfig};
use rept::graph::csr::CsrGraph;
use rept::graph::stats::GraphStats;

fn main() {
    // A small-world graph — high clustering by construction.
    let cfg = GeneratorConfig::new(4_000, 3);
    let stream = rept::gen::stream_order(watts_strogatz(&cfg, 10, 0.05), 17);
    println!("stream: {} edges", stream.len());

    // Pass 1 (exact, cheap): degree statistics → wedge count.
    let csr = CsrGraph::from_edges(&stream);
    let stats = GraphStats::of(&csr);
    println!("wedges: {}", stats.wedges);

    // Pass 2 (sampled): τ̂ from REPT, with a confidence interval.
    let rept = Rept::new(
        ReptConfig::new(8, 8)
            .with_seed(5)
            .with_locals(false)
            .with_eta(true),
    );
    let est = rept.run_sequential(stream.iter().copied());
    let ci = confidence_interval(&est, 0.95, IntervalMethod::Gaussian);

    let c_hat = 3.0 * est.global / stats.wedges as f64;
    let c_low = 3.0 * ci.lower / stats.wedges as f64;
    let c_high = 3.0 * ci.upper / stats.wedges as f64;

    // Reference: fully exact coefficient.
    let c_exact = global_clustering(&csr).expect("wedges exist");

    println!("\nglobal clustering coefficient:");
    println!("  exact      C  = {c_exact:.4}");
    println!("  estimated  Ĉ  = {c_hat:.4}   (95% CI [{c_low:.4}, {c_high:.4}])");
    let rel = (c_hat - c_exact).abs() / c_exact;
    println!("  relative error {:.2}%", rel * 100.0);
    assert!(
        c_exact > 0.4,
        "Watts–Strogatz at β = 0.05 should be strongly clustered"
    );
    assert!(rel < 0.2, "estimate should land near the exact coefficient");
}
