//! Handling streams with duplicate edges.
//!
//! The REPT/MASCOT/TRIÈST analysis assumes each edge appears once; real
//! packet streams repeat edges relentlessly. This example shows (1) the
//! estimate blowing up on a dirty stream, (2) exact dedup fixing it at
//! `O(distinct)` memory, and (3) Bloom dedup fixing it at fixed memory
//! with a small, predictable downward bias — the PartitionCT problem
//! setting ([43] in the paper), solved here with the library's filter
//! substrate.
//!
//! Run: `cargo run --release --example dirty_stream`

use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::{barabasi_albert, stream_order, GeneratorConfig};
use rept::graph::duplicates::{BloomDedup, ExactDedup};
use rept::graph::edge::Edge;
use rept::hash::SplitMix64;

fn main() {
    // Clean stream + ground truth.
    let cfg = GeneratorConfig::new(2_500, 4);
    let clean = stream_order(barabasi_albert(&cfg, 5), 8);
    let gt = GroundTruth::compute(&clean);
    println!("clean stream: {} edges, τ = {}", clean.len(), gt.tau);

    // Dirty stream: every edge re-appears 1–4 times, shuffled.
    let mut rng = SplitMix64::new(99);
    let mut dirty: Vec<Edge> = Vec::new();
    for &e in &clean {
        for _ in 0..(1 + rng.next_below(4)) {
            dirty.push(e);
        }
    }
    let dirty = stream_order(dirty, 123);
    println!(
        "dirty stream: {} arrivals ({:.1}× duplication)",
        dirty.len(),
        dirty.len() as f64 / clean.len() as f64
    );

    let run = |stream: &[Edge], seed: u64| {
        Rept::new(ReptConfig::new(6, 6).with_seed(seed).with_locals(false))
            .run_sequential(stream.iter().copied())
            .global
    };

    // 1. Naive: duplicates corrupt the estimate.
    let naive = run(&dirty, 1);

    // 2. Exact dedup front.
    let mut exact_filter = ExactDedup::new();
    let exact_clean: Vec<Edge> = dirty
        .iter()
        .copied()
        .filter(|&e| exact_filter.admit(e))
        .collect();
    let with_exact = run(&exact_clean, 1);

    // 3. Bloom dedup front (1% false positives, fixed memory).
    let mut bloom_filter = BloomDedup::new(clean.len() as u64, 0.01, 7);
    let bloom_clean: Vec<Edge> = dirty
        .iter()
        .copied()
        .filter(|&e| bloom_filter.admit(e))
        .collect();
    let with_bloom = run(&bloom_clean, 1);

    let rel = |x: f64| (x - gt.tau as f64) / gt.tau as f64 * 100.0;
    println!("\nestimates (τ = {}):", gt.tau);
    println!(
        "  naive on dirty stream : {naive:>10.0}  ({:+.1}%)",
        rel(naive)
    );
    println!(
        "  exact dedup           : {with_exact:>10.0}  ({:+.1}%)  [{} dupes dropped]",
        rel(with_exact),
        exact_filter.duplicates()
    );
    println!(
        "  bloom dedup (1% fp)   : {with_bloom:>10.0}  ({:+.1}%)  [{} KiB filter]",
        rel(with_bloom),
        bloom_filter.bytes() / 1024
    );

    assert!(
        naive > gt.tau as f64 * 1.5,
        "duplicates should inflate the naive estimate substantially"
    );
    assert!(rel(with_exact).abs() < 40.0);
    assert!(rel(with_bloom).abs() < 40.0);
    println!("\nduplicate handling restores sane estimates; Bloom trades ~3·fp downward bias for fixed memory.");
}
