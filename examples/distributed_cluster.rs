//! REPT on a simulated cluster: an in-process *model* of distributing
//! the paper's future-work extension, for studying the operational
//! envelope (broadcast batching, channel backpressure, per-machine
//! memory budgets) without sockets.
//!
//! Spreads `c = 12` processors over 4 simulated machines connected to a
//! broadcasting coordinator by bounded channels, enforces a per-machine
//! memory budget, and shows the estimate matches the single-process
//! driver exactly (REPT processors never communicate mid-stream, so
//! distribution cannot change the math — only the operational envelope).
//!
//! The *deployable* counterpart is the `rept-shard` tier
//! (`examples/sharded_cluster.rs`): real shard servers over the v2
//! wire protocol behind a coordinator, with per-shard durability,
//! degraded health and shard rejoin. The differences to keep straight:
//! machines here own **contiguous worker ranges** and exist only for
//! the lifetime of one `run_cluster` call, while shards own
//! **round-robin group slices** ([`rept::core::GroupSlice`]), serve
//! queries mid-stream, and survive kills via checkpoint + journal.
//! Both obey the same invariant demonstrated below: distribution never
//! changes the estimate's bytes.
//!
//! Run: `cargo run --release --example distributed_cluster`

use rept::core::cluster::{run_cluster, ClusterConfig};
use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::{rmat, stream_order, GeneratorConfig, RmatParams};

fn main() {
    let cfg = GeneratorConfig::new(1 << 12, 5);
    let stream = stream_order(rmat(&cfg, 12, 20_000, RmatParams::skewed()), 8);
    let gt = GroundTruth::compute(&stream);
    println!("stream: {} edges, τ = {}", stream.len(), gt.tau);

    let rept = Rept::new(ReptConfig::new(4, 12).with_seed(2).with_locals(false));

    // Reference: in-process sequential driver.
    let seq = rept.run_sequential(stream.iter().copied());

    // Cluster: 4 machines × 3 processors, 1 MiB per machine.
    let report = run_cluster(
        &rept,
        &stream,
        &ClusterConfig {
            machines: 4,
            batch_size: 512,
            channel_capacity: 4,
            memory_budget: Some(1024 * 1024),
        },
    );

    println!("\ncluster result:");
    println!("  τ̂ (cluster)    = {:.0}", report.estimate.global);
    println!("  τ̂ (sequential) = {:.0}", seq.global);
    assert_eq!(report.estimate.global, seq.global, "drivers must agree");
    println!("  batches broadcast: {}", report.batches_sent);
    for (i, bytes) in report.peak_bytes_per_machine.iter().enumerate() {
        let flag = if report.budget_exceeded.contains(&i) {
            "  <-- over budget"
        } else {
            ""
        };
        println!(
            "  machine {i}: peak ≈ {:.1} KiB{flag}",
            *bytes as f64 / 1024.0
        );
    }
    let err = (report.estimate.global - gt.tau as f64).abs() / gt.tau as f64;
    println!("\nrelative error vs exact: {:.2}%", err * 100.0);
}
