//! Kill-and-resume smoke test over the unified execution core.
//!
//! Streams a synthetic graph into a [`ResumableRun`] on every engine,
//! checkpoints mid-stream (RPCK v4, crash-safe write-then-rename),
//! "kills" the run by dropping it — losing every edge applied after the
//! checkpoint, exactly like a crash — restores from the file, replays
//! the remainder of the stream, and asserts the final estimate is
//! **bit-identical** to an uninterrupted run. CI runs this as the
//! kill-and-resume smoke step.
//!
//! Run: `cargo run --release --example kill_resume`

use rept::core::resume::ResumableRun;
use rept::core::{Engine, Rept, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};

fn main() {
    let stream = barabasi_albert(&GeneratorConfig::new(4000, 21), 5);
    // m = 16, c = 41: three full hash groups plus a c mod m = 9
    // remainder group — the masked shared-structure layout — with η and
    // locals on so every counter the engines maintain is exercised.
    let cfg = ReptConfig::new(16, 41).with_seed(77).with_eta(true);
    let rept = Rept::new(cfg);
    let uninterrupted = rept.run_sequential(stream.iter().copied());
    let split = stream.len() / 2;
    let path = std::env::temp_dir().join(format!("rept-kill-resume-{}.rpck", std::process::id()));

    for engine in Engine::all() {
        let mut run = ResumableRun::with_engine(rept.clone(), engine);
        run.process_batch(&stream[..split]);
        run.checkpoint_to_file(&path).expect("write checkpoint");
        // Ingest past the checkpoint, then "crash": these edges are lost
        // with the process and must be replayed from the checkpointed
        // position by the restarted producer.
        run.process_batch(&stream[split..split + split / 2]);
        drop(run);

        let mut resumed = ResumableRun::from_checkpoint_file(&path).expect("restore checkpoint");
        assert_eq!(resumed.engine(), engine, "engine survives the roundtrip");
        assert_eq!(resumed.position(), split as u64, "replay point");
        resumed.process_batch(&stream[split..]);
        let est = resumed.finalize();

        assert_eq!(est.global, uninterrupted.global, "{}: τ̂", engine.name());
        assert_eq!(
            est.locals,
            uninterrupted.locals,
            "{}: locals",
            engine.name()
        );
        assert_eq!(est.eta_hat, uninterrupted.eta_hat, "{}: η̂", engine.name());
        assert_eq!(
            est.diagnostics.per_processor_tau,
            uninterrupted.diagnostics.per_processor_tau,
            "{}: per-processor τ",
            engine.name()
        );
        println!(
            "{:>12}: killed at {split}, resumed, τ̂ = {} — bit-identical to uninterrupted",
            engine.name(),
            est.global
        );
    }
    std::fs::remove_file(&path).ok();
    println!("kill/resume OK on all engines ({} edges)", stream.len());
}
