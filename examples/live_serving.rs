//! Live serving smoke test: the full online loop over TCP.
//!
//! Starts the serving subsystem in-process ([`rept::serve::Server`]
//! over a single default tenant), streams a generated graph to it over
//! the wire with the blocking [`rept::serve::Client`], queries
//! mid-stream (global estimate with plug-in 95% confidence interval,
//! top-k locals — answered from published snapshots, so queries never
//! block ingestion), checkpoints (RPCK v4, write-then-rename), kills
//! the server, restarts it from the checkpoint, replays the remainder
//! of the stream, and asserts the resumed estimate is **bit-identical**
//! to an uninterrupted batch run — floats cross the wire exactly thanks
//! to shortest-roundtrip formatting (see `docs/PROTOCOL.md`).
//!
//! Run: `cargo run --release --example live_serving`
//!
//! CI runs this binary as the serve smoke test; the multi-tenant
//! variant of the same loop is `examples/multi_tenant.rs`.

use rept::core::{Engine, Rept, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::serve::{Client, ServeConfig, Server};

fn main() {
    // A stream with all three combination paths in reach: m = 16,
    // c = 24 → one full group plus a remainder group (Graybill–Deal).
    let stream = barabasi_albert(&GeneratorConfig::new(4000, 42), 4);
    let cfg = ReptConfig::new(16, 24).with_seed(7).with_eta(true);
    println!(
        "stream: {} edges; m = {}, c = {}, engine = {}",
        stream.len(),
        cfg.m,
        cfg.c,
        Engine::default().name()
    );

    // The uninterrupted reference run.
    let oracle = Rept::new(cfg).run(Engine::default(), &stream);
    println!("uninterrupted batch estimate: τ̂ = {:.1}", oracle.global);

    let ckpt = std::env::temp_dir().join(format!("rept-live-serving-{}.rpck", std::process::id()));
    std::fs::remove_file(&ckpt).ok();

    let serve_cfg = ServeConfig::new(cfg)
        .with_checkpoint(ckpt.clone(), Some(4096))
        .with_snapshot_every(1024)
        .with_top_k(10);

    // ---- phase 1: serve the first half, query mid-stream, checkpoint.
    let server = Server::start(serve_cfg.clone(), "127.0.0.1:0", 2).expect("bind server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let mut client = Client::connect(addr).expect("connect");
    let half = stream.len() / 2;
    client.ingest(&stream[..half]).expect("ingest first half");
    let pos = client.flush().expect("flush");
    assert_eq!(pos, half as u64);

    let mid = client.query_global().expect("mid-stream query");
    let (lo, hi) = mid.ci95.expect("η tracked ⇒ interval");
    println!(
        "mid-stream (position {}): τ̂ = {:.1}, 95% CI [{lo:.1}, {hi:.1}]",
        mid.position, mid.tau
    );
    let top = client.top_k(5).expect("top-k");
    println!("top-5 locals mid-stream: {top:?}");

    let ckpt_pos = client.checkpoint().expect("checkpoint");
    assert_eq!(ckpt_pos, half as u64);
    println!("checkpointed at position {ckpt_pos}");

    // ---- kill. (The shutdown-path final checkpoint lands at the same
    // position — nothing was ingested after the explicit checkpoint.)
    drop(client);
    server.shutdown();
    println!("server killed");

    // ---- phase 2: restart from the checkpoint, replay the rest.
    let server = Server::start(serve_cfg, "127.0.0.1:0", 2).expect("restart server");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("reconnect");

    let resumed_at = client.flush().expect("position after resume");
    assert_eq!(
        resumed_at, half as u64,
        "resumed at the checkpoint position"
    );
    println!("restarted on {addr}, resumed at position {resumed_at}");

    client.ingest(&stream[half..]).expect("ingest second half");
    let end = client.flush().expect("final flush");
    assert_eq!(end, stream.len() as u64);

    let final_est = client.query_global().expect("final query");
    assert_eq!(
        final_est.tau, oracle.global,
        "resumed estimate must be bit-identical to the uninterrupted run"
    );
    // Local estimates survive the kill/resume cycle exactly, too.
    let top = client.top_k(5).expect("final top-k");
    for &(v, t) in &top {
        assert_eq!(t, oracle.local(v), "local estimate of node {v}");
    }
    println!(
        "resumed estimate: τ̂ = {:.1} — bit-identical to the uninterrupted run ✓",
        final_est.tau
    );

    drop(client);
    server.shutdown();
    std::fs::remove_file(&ckpt).ok();
    println!("live serving smoke test passed");
}
