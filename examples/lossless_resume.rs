//! Lossless-resume smoke test over the write-ahead edge journal.
//!
//! Starts a journaled [`ServeCore`] on every engine, ingests a
//! synthetic stream in acked batches (each ack is preceded by an
//! fsync), freezes the on-disk state mid-stream — *without ever
//! checkpointing* — and "kills" the core. Restarting from the frozen
//! image must replay the whole journal and recover **exactly** the
//! acked prefix: nothing lost, nothing invented, bit-identical to an
//! uninterrupted run. Checkpoint-only resume is merely deterministic
//! (post-checkpoint edges need a replaying producer); the journal makes
//! it lossless. CI runs this as the lossless-resume smoke step.
//!
//! Run: `cargo run --release --example lossless_resume`

use std::path::{Path, PathBuf};

use rept::core::{Engine, Rept, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::serve::{ServeConfig, ServeCore};

/// Snapshots every file under `root`, emulating the disk at a crash
/// instant (acked journal records are already fsynced, so the freeze
/// point is a real point-in-time crash state).
fn freeze_dir(root: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    std::fs::read_dir(root)
        .expect("read root")
        .filter_map(|e| e.ok())
        .map(|e| {
            let path = e.path();
            let bytes = std::fs::read(&path).expect("freeze file");
            (path, bytes)
        })
        .collect()
}

fn restore_dir(root: &Path, frozen: &[(PathBuf, Vec<u8>)]) {
    std::fs::remove_dir_all(root).ok();
    std::fs::create_dir_all(root).expect("recreate root");
    for (path, bytes) in frozen {
        std::fs::write(path, bytes).expect("restore frozen file");
    }
}

fn main() {
    let stream = barabasi_albert(&GeneratorConfig::new(4000, 21), 5);
    // Same layout as the kill_resume smoke: three full hash groups plus
    // a c mod m = 9 remainder group, η and locals on.
    let cfg = ReptConfig::new(16, 41).with_seed(77).with_eta(true);
    let uninterrupted = Rept::new(cfg).run_sequential(stream.iter().copied());
    let kill_at = stream.len() * 2 / 3;

    for engine in Engine::all() {
        let root = std::env::temp_dir().join(format!(
            "rept-lossless-{}-{}",
            engine.name(),
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).expect("mk root");
        let serve_cfg = ServeConfig::new(cfg)
            .with_engine(engine)
            .with_checkpoint(root.join("serve.rpck"), None)
            .with_journal();

        let core = ServeCore::start(serve_cfg.clone()).expect("start");
        for chunk in stream[..kill_at].chunks(97) {
            core.ingest(chunk.to_vec()).expect("acked");
        }
        // Kill: freeze the acked disk state (journal only — no
        // checkpoint was ever written), let the core die, restore the
        // crash-time image over whatever its shutdown wrote.
        let frozen = freeze_dir(&root);
        drop(core);
        restore_dir(&root, &frozen);

        let resumed = ServeCore::start(serve_cfg).expect("recover");
        assert_eq!(
            resumed.position(),
            kill_at as u64,
            "{}: every acked edge recovered",
            engine.name()
        );
        resumed.flush();
        let snap = resumed.snapshot();
        assert_eq!(
            snap.durability.replayed,
            kill_at as u64,
            "{}: whole journal replayed",
            engine.name()
        );
        // Feed the unacked remainder: the recovered core must land
        // bit-identical to a run that never crashed.
        for chunk in stream[kill_at..].chunks(97) {
            resumed.ingest(chunk.to_vec()).expect("acked");
        }
        resumed.flush();
        let snap = resumed.snapshot();
        assert_eq!(snap.global, uninterrupted.global, "{}: τ̂", engine.name());
        assert_eq!(
            snap.locals,
            uninterrupted.locals,
            "{}: locals",
            engine.name()
        );
        println!(
            "{:>12}: killed at {kill_at} (no checkpoint), replayed {} edges, τ̂ = {} — lossless",
            engine.name(),
            kill_at,
            snap.global
        );
        resumed.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
    println!("lossless resume OK on all engines ({} edges)", stream.len());
}
