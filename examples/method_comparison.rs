//! Head-to-head: REPT vs parallel MASCOT / TRIÈST / GPS on one dataset.
//!
//! A miniature of the paper's Figures 3/4: same memory per processor,
//! same number of processors, NRMSE over repeated trials — plus the
//! closed-form theory columns from §III. REPT should win, and the margin
//! should be biggest exactly when `η/τ` is large.
//!
//! Run: `cargo run --release --example method_comparison`

use rept::baselines::parallel::ParallelAveraged;
use rept::baselines::traits::StreamingTriangleCounter;
use rept::baselines::{Gps, Mascot, TriestImpr};
use rept::core::variance::{nrmse_of_unbiased, parallel_mascot_variance, rept_variance};
use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::DatasetId;
use rept::hash::SplitMix64;

const TRIALS: u64 = 25;
const M: u64 = 10; // p = 0.1
const C: u64 = 10;

fn nrmse(estimates: &[f64], truth: f64) -> f64 {
    let mse = estimates
        .iter()
        .map(|e| (e - truth) * (e - truth))
        .sum::<f64>()
        / estimates.len() as f64;
    mse.sqrt() / truth
}

fn main() {
    let dataset = DatasetId::FlickrSim.dataset_scaled(0.2);
    let gt = GroundTruth::compute(&dataset.stream);
    let stream = &dataset.stream;
    println!(
        "dataset {}: {} edges, τ = {}, η = {} (η/τ = {:.0})",
        dataset.name(),
        stream.len(),
        gt.tau,
        gt.eta,
        gt.eta_tau_ratio().unwrap_or(f64::NAN)
    );
    let tau = gt.tau as f64;
    let p = 1.0 / M as f64;
    let budget = ((stream.len() as f64) * p).round() as usize;

    // REPT.
    let rept_est: Vec<f64> = (0..TRIALS)
        .map(|t| {
            let cfg = ReptConfig::new(M, C).with_seed(t).with_locals(false);
            Rept::new(cfg).run_sequential(stream.iter().copied()).global
        })
        .collect();

    // Parallel baselines: c independent instances, averaged.
    let run_parallel = |factory: &dyn Fn(u64) -> Box<dyn StreamingTriangleCounter>| -> Vec<f64> {
        (0..TRIALS)
            .map(|t| {
                let root = SplitMix64::new(t);
                let mut instances: Vec<Box<dyn StreamingTriangleCounter>> =
                    (0..C).map(|i| factory(root.fork(i).next_u64())).collect();
                for &e in stream {
                    for inst in &mut instances {
                        inst.process(e);
                    }
                }
                instances.iter().map(|i| i.global_estimate()).sum::<f64>() / C as f64
            })
            .collect()
    };
    let mascot = run_parallel(&|s| Box::new(Mascot::new(p, s).without_locals()));
    let triest = run_parallel(&|s| Box::new(TriestImpr::new(budget, s).without_locals()));
    let gps = run_parallel(&|s| Box::new(Gps::new(budget / 2, s).without_locals()));

    let theory_mascot =
        nrmse_of_unbiased(parallel_mascot_variance(tau, gt.eta as f64, M, C), tau).unwrap();
    let theory_rept = nrmse_of_unbiased(rept_variance(tau, gt.eta as f64, M, C), tau).unwrap();

    println!("\nmethod    measured-NRMSE   theory-NRMSE");
    println!(
        "MASCOT    {:>14.4}   {theory_mascot:>12.4}",
        nrmse(&mascot, tau)
    );
    println!(
        "TRIEST    {:>14.4}   {theory_mascot:>12.4}",
        nrmse(&triest, tau)
    );
    println!("GPS       {:>14.4}   {:>12}", nrmse(&gps, tau), "n/a");
    println!(
        "REPT      {:>14.4}   {theory_rept:>12.4}",
        nrmse(&rept_est, tau)
    );
    println!(
        "\nREPT improvement over parallel MASCOT: {:.1}× (theory predicts {:.1}×)",
        nrmse(&mascot, tau) / nrmse(&rept_est, tau),
        theory_mascot / theory_rept
    );

    // Demonstrate the trait-object-free path too: ParallelAveraged is the
    // library type the experiment harness uses.
    let mut averaged = ParallelAveraged::new(C as usize, |i| Mascot::new(p, i as u64 + 1));
    for &e in stream {
        averaged.process(e);
    }
    println!(
        "(one ParallelAveraged<Mascot> run for reference: τ̂ = {:.0})",
        averaged.global_estimate()
    );
}
