//! Multi-tenant serving smoke test: one router, many estimators, one
//! kill/resume cycle.
//!
//! Starts the serving subsystem with a tenant root directory, creates
//! two standalone tenants (different engines/seeds) plus one
//! interval-derived tenant over TCP, fans the first half of a generated
//! stream out to all of them (`INGEST * …`), queries per-tenant and
//! cross-tenant (`TOPK k *`, `STATS *`), checkpoints every tenant,
//! kills the whole router (faithfully: the tenant root is frozen at
//! its checkpoint-time state, so edges ingested after the checkpoints
//! are lost with the process), restarts it — **all tenants resume from
//! their own checkpoint directories** — replays the remainder, and
//! asserts every tenant's final estimate is **bit-identical** to an
//! uninterrupted batch run under the tenant's resolved configuration.
//!
//! Run: `cargo run --release --example multi_tenant`

use std::path::{Path, PathBuf};

use rept::core::interval::IntervalEstimator;
use rept::core::{Engine, Rept, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::serve::{Client, RouterConfig, ServeConfig, Server};

/// Recursively snapshots every file under `root` — freezing the tenant
/// root at checkpoint time to emulate a crash. Twin of the helper in
/// `tests/serve.rs`; keep their crash semantics in sync.
fn freeze_dir(root: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let bytes = std::fs::read(&path).expect("freeze file");
                files.push((path, bytes));
            }
        }
    }
    files
}

/// Restores the frozen image, discarding everything written after it.
fn restore_dir(root: &Path, frozen: &[(PathBuf, Vec<u8>)]) {
    std::fs::remove_dir_all(root).ok();
    for (path, bytes) in frozen {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("recreate tenant dir");
        }
        std::fs::write(path, bytes).expect("restore frozen file");
    }
}

fn main() {
    let stream = barabasi_albert(&GeneratorConfig::new(3000, 17), 4);
    let base = ReptConfig::new(8, 12).with_seed(5).with_eta(true);
    println!(
        "stream: {} edges; base m = {}, c = {}, engine = {}",
        stream.len(),
        base.m,
        base.c,
        Engine::default().name()
    );

    let root = std::env::temp_dir().join(format!("rept-multi-tenant-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let router_cfg = RouterConfig::new(
        ServeConfig::new(base)
            .with_snapshot_every(512)
            .with_top_k(5),
    )
    .with_root_dir(root.clone());

    // The tenants this deployment serves, with their expected batch
    // oracles: `default` (the base config), `spam` (an independent
    // per-worker estimator on its own seed), and `win3` (window 3 of
    // the interval sequence — sliding-window estimates are just
    // tenants).
    let spam_cfg = ReptConfig { seed: 99, ..base };
    let win3_cfg = IntervalEstimator::new(base).config_for(3);
    let oracles = [
        (
            "default",
            Rept::new(base).run_sequential(stream.iter().copied()),
        ),
        (
            "spam",
            Rept::new(spam_cfg).run_sequential(stream.iter().copied()),
        ),
        (
            "win3",
            Rept::new(win3_cfg).run_sequential(stream.iter().copied()),
        ),
    ];

    // ---- phase 1: create tenants, fan out, query, checkpoint.
    let server = Server::start_router(router_cfg.clone(), "127.0.0.1:0", 2).expect("bind server");
    let addr = server.local_addr();
    println!("serving on {addr}");

    let mut client = Client::connect(addr).expect("connect");
    client
        .tenant_create("spam", "engine=per-worker seed=99")
        .expect("create spam");
    client
        .tenant_create_interval("win3", 3)
        .expect("create win3");
    println!("tenants: {:?}", client.tenant_list().expect("list"));

    let half = stream.len() / 2;
    client
        .ingest_to("*", &stream[..half])
        .expect("fan-out ingest");
    for t in ["default", "spam", "win3"] {
        client.use_tenant(t).expect("use");
        let pos = client.flush().expect("flush");
        assert_eq!(pos, half as u64);
        let mid = client.query_global().expect("mid-stream query");
        println!("  {t:>7} @ {pos}: τ̂ = {:.1}", mid.tau);
    }
    let merged = client.top_k_all(5).expect("cross-tenant top-k");
    println!("cross-tenant top-5: {merged:?}");
    println!("aggregate: {}", client.stats_all().expect("stats *"));

    for t in ["default", "spam", "win3"] {
        client.use_tenant(t).expect("use");
        let pos = client.checkpoint().expect("checkpoint");
        assert_eq!(pos, half as u64);
    }
    println!("all tenants checkpointed at position {half}");

    // ---- kill the whole router. The crash is emulated faithfully:
    // edges ingested *after* the checkpoints are lost with the process
    // (the tenant root is frozen at its checkpoint-time state and
    // restored over whatever the shutdown drain wrote), and the
    // restarted producer must replay from the resumed positions.
    client
        .ingest_to("*", &stream[half..half + 500])
        .expect("post-checkpoint edges (to be lost)");
    let frozen = freeze_dir(&root);
    drop(client);
    server.shutdown_all();
    restore_dir(&root, &frozen);
    println!(
        "router killed ({} files frozen at the checkpoint state; 500 post-checkpoint edges lost)",
        frozen.len()
    );

    // ---- phase 2: restart; every tenant resumes from its directory.
    let server = Server::start_router(router_cfg, "127.0.0.1:0", 2).expect("restart server");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("reconnect");
    let tenants = client.tenant_list().expect("list after resume");
    assert_eq!(tenants.len(), 3, "all tenants resumed: {tenants:?}");
    for (name, pos) in &tenants {
        assert_eq!(*pos, half as u64, "tenant {name} resumed at the checkpoint");
    }
    println!("restarted on {addr}; tenants resumed: {tenants:?}");

    client.ingest_to("*", &stream[half..]).expect("replay");
    for (name, oracle) in &oracles {
        client.use_tenant(name).expect("use");
        let end = client.flush().expect("final flush");
        assert_eq!(end, stream.len() as u64);
        let est = client.query_global().expect("final query");
        assert_eq!(
            est.tau, oracle.global,
            "tenant {name}: resumed estimate must be bit-identical"
        );
        for (v, t) in client.top_k(5).expect("final top-k") {
            assert_eq!(t, oracle.local(v), "tenant {name}, node {v}");
        }
        println!("  {name:>7}: τ̂ = {:.1} — bit-identical ✓", est.tau);
    }

    // Tenants are droppable at runtime; the directory goes with them.
    client.use_tenant("default").expect("use default");
    client.tenant_drop("spam").expect("drop spam");
    assert!(!root.join("spam").exists(), "spam's checkpoint dir removed");
    println!("dropped tenant spam (checkpoint directory removed)");

    drop(client);
    server.shutdown_all();
    std::fs::remove_dir_all(&root).ok();
    println!("multi-tenant serving smoke test passed");
}
