//! Observability smoke test over the multi-tenant TCP server.
//!
//! Drives two journaled tenants, scrapes `METRICS *` over the wire, and
//! asserts the exposition is self-consistent: per-tenant ingest counters
//! match what was sent, journal appends and fsyncs fired, the `_all`
//! aggregate equals the cross-tenant sum, query latency summaries carry
//! the verb label, and `HEALTH` reports the live sync policy. A second
//! server with a zero slow-op threshold proves `TRACE TAIL` captures
//! structured apply/publish events and drains on read. CI runs this as
//! the observability smoke step.
//!
//! Run: `cargo run --release --example observability`

use std::time::Duration;

use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::serve::{Client, RouterConfig, ServeConfig, Server};

/// Extracts the value of a `name{tenant="t"} v` exposition sample.
fn sample(text: &str, name: &str, tenant: &str) -> u64 {
    let prefix = format!("{name}{{tenant=\"{tenant}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("no {name}{{tenant={tenant}}} in exposition"))
        .parse()
        .expect("integer sample")
}

fn main() {
    let stream = barabasi_albert(&GeneratorConfig::new(2000, 21), 5);
    let cfg = rept::core::ReptConfig::new(16, 16).with_seed(9);

    let root = std::env::temp_dir().join(format!("rept-observability-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mk root");
    let base = ServeConfig::new(cfg).with_journal();
    let router_cfg = RouterConfig::new(base).with_root_dir(root.clone());
    let server = Server::start_router(router_cfg, "127.0.0.1:0", 2).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Two tenants, different volumes: default takes the whole stream,
    // half takes the front half.
    client.tenant_create("half", "").expect("create half");
    client.ingest(&stream).expect("default ingest");
    client.flush().expect("flush default");
    client.query_global().expect("query default");
    client.use_tenant("half").expect("use half");
    client
        .ingest(&stream[..stream.len() / 2])
        .expect("half ingest");
    client.flush().expect("flush half");

    let health = client.health().expect("health");
    assert!(
        health.contains("sync=per-record"),
        "HEALTH must report the live sync policy: {health}"
    );

    let text = client.metrics_all().expect("scrape");
    let sent_default = stream.len() as u64;
    let sent_half = (stream.len() / 2) as u64;
    let default = sample(&text, "rept_ingest_edges_total", "default");
    let half = sample(&text, "rept_ingest_edges_total", "half");
    let all = sample(&text, "rept_ingest_edges_total", "_all");
    assert_eq!(default, sent_default, "default counter matches ingest");
    assert_eq!(half, sent_half, "half counter matches ingest");
    assert_eq!(all, default + half, "_all is the cross-tenant sum");
    for tenant in ["default", "half"] {
        assert!(
            sample(&text, "rept_journal_appends_total", tenant) > 0,
            "{tenant} journal appends"
        );
        assert!(
            sample(&text, "rept_journal_fsyncs_total", tenant) > 0,
            "{tenant} journal fsyncs"
        );
        assert!(
            sample(&text, "rept_snapshots_published_total", tenant) > 0,
            "{tenant} snapshots"
        );
    }
    assert!(
        text.contains("rept_query_micros_count{tenant=\"default\",verb=\"global\"} 1"),
        "query latency must carry the verb label"
    );

    drop(client);
    server.shutdown_all();

    // A zero slow-op threshold turns every instrumented op into a trace
    // event: TRACE TAIL returns structured lines and drains on read.
    let trace_root = root.join("trace");
    let base = ServeConfig::new(cfg)
        .with_snapshot_every(64)
        .with_slow_op_threshold(Duration::ZERO);
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(trace_root),
        "127.0.0.1:0",
        1,
    )
    .expect("bind trace server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ingest(&stream[..256]).expect("ingest");
    client.flush().expect("flush");
    let events = client.trace_tail(32).expect("trace");
    assert!(
        events.iter().any(|l| l.contains("op=apply"))
            && events.iter().any(|l| l.contains("op=publish")),
        "zero threshold must capture apply + publish: {events:?}"
    );
    assert!(
        client.trace_tail(32).expect("second tail").is_empty(),
        "the ring drains on read"
    );

    println!(
        "observability OK: default={default} half={half} _all={all} edges \
         counted over the wire, journal + snapshot series live, {} slow-op \
         events traced and drained",
        events.len()
    );
    drop(client);
    server.shutdown_all();
    std::fs::remove_dir_all(&root).ok();
}
