//! Overload-resilience smoke test over the multi-tenant TCP server.
//!
//! Exercises the quota tier end to end: a `quota=reject` tenant is
//! pressed past its memory budget and must refuse with a typed
//! `ERR QUOTA` (captured in its dead-letter file, replayable via
//! `DLQ REPLAY`); a `shed` tenant under the same budget must accept the
//! whole stream while its stored bytes stay under the ceiling (the
//! bounded-memory reservoir engine); and the unquota'd default tenant
//! must stay bit-identical to a standalone oracle — co-tenant pressure
//! leaks nothing. A restart from the same root then proves the quota
//! configuration survives in the tenant manifest: the capped tenant
//! still refuses, the default tenant still answers bit-identically.
//! CI runs this as the overload smoke step.
//!
//! Run: `cargo run --release --example overload`

use rept::core::{Rept, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::serve::{Client, RouterConfig, ServeConfig, Server};

const BUDGET: u64 = 8192;

fn health_field(health: &str, key: &str) -> u64 {
    health
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .unwrap_or_else(|| panic!("no {key} in {health:?}"))
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} in {health:?}: {e}"))
}

fn main() {
    let stream = barabasi_albert(&GeneratorConfig::new(3000, 33), 5);
    let cfg = ReptConfig::new(16, 16).with_seed(9);
    let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());

    let root = std::env::temp_dir().join(format!("rept-overload-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mk root");
    let base = ServeConfig::new(cfg).with_journal();
    let router_cfg = RouterConfig::new(base).with_root_dir(root.clone());
    let server = Server::start_router(router_cfg.clone(), "127.0.0.1:0", 2).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client
        .tenant_create("capped", &format!("memory_budget={BUDGET} quota=reject"))
        .expect("create capped");
    client
        .tenant_create("spark", &format!("memory_budget={BUDGET}"))
        .expect("create spark"); // quota defaults to shed

    // The default tenant takes the whole stream, unquota'd.
    client.ingest(&stream).expect("default ingest");
    client.flush().expect("flush");

    // The shed tenant takes the whole stream too: the reservoir engine
    // never refuses, it evicts — stored bytes stay under the budget.
    client.use_tenant("spark").expect("use spark");
    client.ingest(&stream).expect("shed ingest never refuses");
    client.flush().expect("flush");
    let health = client.health().expect("health");
    let stored = health_field(&health, "bytes=");
    assert!(
        stored <= BUDGET,
        "shed tenant over budget: {stored} B > {BUDGET} B ({health})"
    );
    assert!(health.contains("state=ok"), "shed never degrades: {health}");

    // The reject tenant refuses mid-stream with a typed quota error.
    client.use_tenant("capped").expect("use capped");
    let mut refused = 0usize;
    for chunk in stream.chunks(64) {
        if let Err(e) = client.ingest(chunk) {
            let msg = e.to_string();
            assert!(
                msg.starts_with("QUOTA "),
                "refusal must be typed QUOTA, got {msg:?}"
            );
            refused += 1;
        }
    }
    assert!(refused > 0, "budget {BUDGET} B never pressed");
    let health = client.health().expect("health");
    let dlq = health_field(&health, "dlq=");
    assert_eq!(
        dlq as usize, refused,
        "every refusal dead-lettered ({health})"
    );
    // Replaying without raising the budget just rotates the refusals.
    let (replayed, failed) = client.dlq_replay().expect("replay");
    assert_eq!((replayed, failed), (dlq, dlq), "still over budget");

    let default_tau = {
        client.use_tenant("default").expect("use default");
        let est = client.query_global().expect("query");
        assert_eq!(est.position, stream.len() as u64);
        assert_eq!(est.tau, oracle.global, "co-tenant pressure leaked");
        est.tau
    };

    // Restart from the same root: the manifest must bring the quota
    // configuration back, and the journaled default tenant must answer
    // bit-identically.
    drop(client);
    server.shutdown_all();
    let server = Server::start_router(router_cfg, "127.0.0.1:0", 2).expect("re-bind");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    let est = client.query_global().expect("query after resume");
    assert_eq!(est.position, stream.len() as u64, "lossless resume");
    assert_eq!(est.tau, default_tau, "resume is bit-identical");
    client.use_tenant("capped").expect("use capped");
    let msg = client
        .ingest(&stream[..64])
        .expect_err("quota survives restart")
        .to_string();
    assert!(msg.starts_with("QUOTA "), "typed after restart: {msg:?}");

    println!(
        "overload OK: shed stored {stored} B ≤ {BUDGET} B, reject refused \
         {refused} batches (all dead-lettered), default τ̂ = {default_tau} \
         bit-identical across co-tenant pressure and restart"
    );
    drop(client);
    server.shutdown_all();
    std::fs::remove_dir_all(&root).ok();
}
