//! Quickstart: estimate global and local triangle counts of a stream.
//!
//! Generates a small power-law stream ([`rept::gen::barabasi_albert`]),
//! computes exact ground truth ([`rept::exact::GroundTruth`] — one pass,
//! also computes the pair count `η`), then runs REPT with `m = 10`
//! (sampling probability `p = 1/m = 0.1`) on `c = 10` simulated
//! processors — the covariance-free `c = m` sweet spot — and compares:
//! global estimate `τ̂` vs exact `τ`, the five busiest nodes' local
//! estimates `τ̂_v` vs exact `τ_v`, and the per-processor memory
//! footprint (each processor stores ~`1/m` of the stream).
//!
//! Run: `cargo run --release --example quickstart`
//!
//! The equivalent code, kept compiling as doctests, lives in the crate
//! docs ([`rept`]) and the repository `README.md`; see
//! `examples/live_serving.rs` and `examples/multi_tenant.rs` for the
//! online-serving versions of the same loop.

use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::{barabasi_albert, stream_order, GeneratorConfig};

fn main() {
    // 1. A synthetic stream: preferential-attachment graph, shuffled into
    //    a random arrival order.
    let cfg = GeneratorConfig::new(3_000, 7);
    let stream = stream_order(barabasi_albert(&cfg, 6), 99);
    println!("stream: {} edges", stream.len());

    // 2. Exact ground truth (one pass; also computes η).
    let gt = GroundTruth::compute(&stream);
    println!(
        "exact:  τ = {}, η = {} (η/τ = {:.1})",
        gt.tau,
        gt.eta,
        gt.eta_tau_ratio().unwrap_or(f64::NAN)
    );

    // 3. REPT: p = 1/10, c = 10 processors (the covariance-free c = m
    //    sweet spot), sequential driver.
    let rept = Rept::new(ReptConfig::new(10, 10).with_seed(42));
    let est = rept.run_sequential(stream.iter().copied());
    let rel = (est.global - gt.tau as f64).abs() / gt.tau as f64;
    println!(
        "REPT:   τ̂ = {:.0} (relative error {:.2}%)",
        est.global,
        rel * 100.0
    );

    // 4. Local counts for the five busiest nodes.
    let mut top: Vec<_> = gt.tau_v.iter().map(|(&v, &t)| (t, v)).collect();
    top.sort_unstable_by(|a, b| b.cmp(a));
    println!("\nnode   τ_v(exact)   τ̂_v(REPT)");
    for &(tau_v, v) in top.iter().take(5) {
        println!("{v:>4}   {tau_v:>10}   {:>10.1}", est.local(v));
    }

    // 5. Storage: each processor held ~1/m of the edges.
    let max_stored = est.diagnostics.max_stored_edges();
    println!(
        "\nmemory: max edges stored by one processor = {} ({:.1}% of stream)",
        max_stored,
        100.0 * max_stored as f64 / stream.len() as f64
    );
}
