//! The shard tier end to end over real TCP: 3 journaled shard servers
//! behind a `rept-shard` coordinator front-end, one v2 client talking
//! to the cluster exactly as it would to a single server.
//!
//! Walks the whole distributed contract: ingest through the
//! coordinator, queries bit-identical to a standalone server, a
//! coordinator-orchestrated `CHECKPOINT`, a shard killed mid-stream
//! (HEALTH degrades to `shards=2/3`, queries keep answering from the
//! survivors' smaller-but-valid configuration), shard restart from its
//! own checkpoint + journal, rejoin via the coordinator's replay
//! buffer, and final bit-identical equality with an uninterrupted
//! standalone run.
//!
//! The in-process *simulation* of distributing REPT lives in
//! `examples/distributed_cluster.rs` (contiguous worker ranges, no
//! sockets, no durability); this example is the deployable tier it
//! grew into.
//!
//! Run: `cargo run --release --example sharded_cluster`

use rept::core::{GroupSlice, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::graph::edge::Edge;
use rept::serve::{Client, ServeConfig, Server};
use rept::shard::{CoordinatorConfig, CoordinatorServer, ShardCoordinator, ShardLink};

const SHARDS: u32 = 3;
const SNAPSHOT_EVERY: u64 = 256;

fn shard_server(cfg: ReptConfig, i: u32, root: &std::path::Path) -> Server {
    Server::start(
        ServeConfig::new(cfg)
            .with_snapshot_every(SNAPSHOT_EVERY)
            .with_group_slice(GroupSlice::new(i, SHARDS))
            .with_checkpoint(root.join(format!("shard{i}.rpck")), None)
            .with_journal(),
        "127.0.0.1:0",
        2,
    )
    .expect("start shard server")
}

fn main() {
    // c=11, m=2 → 5 full hash groups + a remainder group, sliced
    // round-robin over 3 shard servers.
    let cfg = ReptConfig::new(2, 11)
        .with_seed(9)
        .with_eta(true)
        .with_locals(true);
    let stream = barabasi_albert(&GeneratorConfig::new(1500, 77), 6);
    let (first, second) = stream.split_at(stream.len() / 2);
    let root = std::env::temp_dir().join(format!("rept-sharded-cluster-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mk root");
    println!(
        "stream: {} edges, cluster root: {}",
        stream.len(),
        root.display()
    );

    // The cluster: 3 journaled shard servers + the coordinator front-end.
    let mut shard_servers: Vec<Option<Server>> = (0..SHARDS)
        .map(|i| Some(shard_server(cfg, i, &root)))
        .collect();
    let links = shard_servers
        .iter()
        .map(|s| ShardLink::connect(s.as_ref().expect("live").local_addr()).expect("link"))
        .collect();
    let coordinator = ShardCoordinator::start(
        CoordinatorConfig::new(cfg).with_snapshot_every(SNAPSHOT_EVERY),
        links,
    )
    .expect("start coordinator");
    let front = CoordinatorServer::start(coordinator, "127.0.0.1:0", 2).expect("front-end");

    // The comparator: one standalone server, same config and cadence.
    let standalone = Server::start(
        ServeConfig::new(cfg).with_snapshot_every(SNAPSHOT_EVERY),
        "127.0.0.1:0",
        2,
    )
    .expect("standalone server");

    let mut to_cluster = Client::connect(front.local_addr()).expect("connect cluster");
    let mut to_single = Client::connect(standalone.local_addr()).expect("connect standalone");

    // Phase 1: first half through both, orchestrated checkpoint, query.
    feed(&mut to_cluster, first);
    feed(&mut to_single, first);
    let pos = to_cluster.checkpoint().expect("orchestrated checkpoint");
    assert_eq!(pos, first.len() as u64, "all three shard slices durable");
    println!("\ncheckpointed whole cluster at position {pos}");
    assert_equal_views(&mut to_cluster, &mut to_single, "after checkpoint");

    // Phase 2: kill shard 2 mid-stream. The coordinator discovers the
    // loss on the next fan-out, keeps acking, and degrades HEALTH.
    shard_servers[2].take().expect("not yet killed").shutdown();
    println!("killed shard 2");
    feed(&mut to_cluster, second);
    feed(&mut to_single, second);
    let health = to_cluster.health().expect("health");
    assert!(
        health.contains("state=degraded") && health.contains("shards=2/3"),
        "typed degraded health, got: {health}"
    );
    println!("cluster health: {health}");
    let degraded = to_cluster.query_global().expect("degraded query answers");
    println!(
        "degraded estimate from survivors: τ̂ = {:.0} (wider CI, c' = 7 of 11)",
        degraded.tau
    );

    // Phase 3: restart shard 2 from its checkpoint + journal, rejoin.
    // The restarted server recovers exactly what it acked; the
    // coordinator replays its buffered batches above that position.
    let revived = shard_server(cfg, 2, &root);
    front
        .coordinator()
        .lock()
        .expect("coordinator lock")
        .revive_shard(2, ShardLink::connect(revived.local_addr()).expect("link"))
        .expect("rejoin");
    shard_servers[2] = Some(revived);
    let health = to_cluster.health().expect("health");
    assert!(
        health.contains("state=ok") && health.contains("shards=3/3"),
        "{health}"
    );
    println!("shard 2 rejoined: {health}");

    // Full equality again: the cluster is bit-identical to the
    // uninterrupted standalone server, through kill and rejoin.
    assert_equal_views(&mut to_cluster, &mut to_single, "after rejoin");
    println!("\nall cluster replies bit-identical to the standalone server");

    drop(to_cluster);
    drop(to_single);
    front.shutdown();
    standalone.shutdown();
    for server in shard_servers.into_iter().flatten() {
        server.shutdown();
    }
    std::fs::remove_dir_all(&root).ok();
    println!("done");
}

/// Feeds a stream half through a client in batches and barriers.
fn feed(client: &mut Client, edges: &[Edge]) {
    for chunk in edges.chunks(128) {
        client.ingest(chunk).expect("ingest");
    }
    client.flush().expect("flush");
}

/// Asserts the cluster's and the standalone server's query replies are
/// byte-identical (parsed values re-compared via the clients' typed
/// accessors — both sides travel the same wire format).
fn assert_equal_views(cluster: &mut Client, single: &mut Client, when: &str) {
    let a = cluster.query_global().expect("cluster global");
    let b = single.query_global().expect("standalone global");
    assert_eq!(a.position, b.position, "{when}: position");
    assert_eq!(a.tau, b.tau, "{when}: global estimate bits");
    assert_eq!(a.ci95, b.ci95, "{when}: confidence interval bits");
    for v in [1u32, 7, 42] {
        let a = cluster.query_local(v).expect("cluster local");
        let b = single.query_local(v).expect("standalone local");
        assert_eq!(a, b, "{when}: local estimate for node {v}");
    }
    let top_a = cluster.top_k(10).expect("cluster topk");
    let top_b = single.top_k(10).expect("standalone topk");
    assert_eq!(top_a, top_b, "{when}: top-k ranking");
    println!(
        "  bit-identical {when}: τ̂ = {:.0} at position {}",
        a.tau, a.position
    );
}
