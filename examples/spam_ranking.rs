//! Local triangle counts for suspicious-account ranking.
//!
//! The paper's intro cites spam/sybil detection: accounts inside link
//! farms sit in abnormally many triangles relative to their degree. This
//! example plants two link farms (cliques) in a power-law social graph,
//! estimates *local* triangle counts with REPT, ranks nodes by the
//! estimate, and measures how many of the true farm members appear in the
//! top of the ranking (precision@k against the planted ground truth).
//!
//! Run: `cargo run --release --example spam_ranking`

use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::{chung_lu, planted_cliques, stream_order, GeneratorConfig};
use rept::graph::edge::NodeId;
use rept::hash::fx::FxHashMap;
use rept::metrics::ranking::{kendall_tau_top, precision_at_k};
use std::collections::HashSet;

fn main() {
    // Social background: 2k nodes, power-law (flattened enough that
    // organic hubs do not out-triangle the farms).
    let n = 2_000u32;
    let bg_cfg = GeneratorConfig::new(n, 11);
    let mut stream = chung_lu(&bg_cfg, 8_000, 2.7, 10.0);

    // Two link farms: 30-cliques on random member sets (τ_v = C(29,2) =
    // 406 for every member — far above organic local counts here).
    let farm_cfg = GeneratorConfig::new(n, 23);
    let farms = planted_cliques(&farm_cfg, 2, 30, 0);
    let farm_members: HashSet<NodeId> = farms.iter().flat_map(|e| [e.u(), e.v()]).collect();
    stream.extend(&farms);
    let stream = stream_order(stream, 3);
    println!(
        "stream: {} edges, {} planted farm members",
        stream.len(),
        farm_members.len()
    );

    // Estimate local counts with REPT (m = 5, c = 5 — covariance-free).
    let rept = Rept::new(ReptConfig::new(5, 5).with_seed(1));
    let est = rept.run_sequential(stream.iter().copied());

    // Rank nodes by estimated local triangle count and score the ranking
    // against exact local counts with the library's ranking metrics.
    let gt = GroundTruth::compute(&stream);
    let truth: FxHashMap<NodeId, f64> = gt.tau_v.iter().map(|(&v, &t)| (v, t as f64)).collect();
    let k = farm_members.len();
    let precision = precision_at_k(&est.locals, &truth, k);
    let tau_rank = kendall_tau_top(&est.locals, &truth, k);

    let mut ranking: Vec<(f64, NodeId)> = est.locals.iter().map(|(&v, &t)| (t, v)).collect();
    ranking.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    println!("\ntop-10 by estimated τ̂_v:");
    println!("rank   node    τ̂_v    farm-member");
    for (rank, (t, v)) in ranking.iter().take(10).enumerate() {
        println!(
            "{:>4}   {v:>4}   {t:>6.0}   {}",
            rank + 1,
            if farm_members.contains(v) { "yes" } else { "" }
        );
    }
    let hits = ranking
        .iter()
        .take(k)
        .filter(|(_, v)| farm_members.contains(v))
        .count();
    println!("\nprecision@{k} vs exact ranking = {precision:.2}");
    println!("Kendall τ on true top-{k}      = {tau_rank:.2}");
    println!("farm members in estimated top-{k}: {hits}/{k}");
    assert!(
        hits as f64 / k as f64 > 0.8,
        "sampled local counts should recover most farm members"
    );
}
