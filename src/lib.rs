//! # rept — parallel streaming triangle counting
//!
//! A Rust implementation of **REPT** (*Random Edge Partition and Triangle
//! counting*), the one-pass parallel streaming algorithm for approximating
//! global and local triangle counts from:
//!
//! > Pinghui Wang, Peng Jia, Yiyan Qi, Yu Sun, Jing Tao, Xiaohong Guan.
//! > "REPT: A Streaming Algorithm of Approximating Global and Local Triangle
//! > Counts in Parallel." ICDE 2019.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — edge/stream/adjacency substrate ([`rept_graph`])
//! * [`hash`] — hashing & sampling primitives ([`rept_hash`])
//! * [`gen`] — synthetic graph generators & dataset registry ([`rept_gen`])
//! * [`exact`] — exact ground-truth counting incl. `η` ([`rept_exact`])
//! * [`core`] — the REPT estimator itself ([`rept_core`])
//! * [`baselines`] — MASCOT, TRIÈST, GPS and parallel averaging
//!   ([`rept_baselines`])
//! * [`metrics`] — NRMSE & Monte-Carlo experiment harness ([`rept_metrics`])
//! * [`serve`] — concurrent serving subsystem: streaming ingest,
//!   snapshot-isolated queries, crash-safe resume ([`rept_serve`])
//! * [`shard`] — sharded distributed tier: a coordinator over
//!   group-sliced shard servers, bit-identical to one server
//!   ([`rept_shard`])
//!
//! ## Architecture: one incremental execution core
//!
//! Every way of running the estimator drives the same type —
//! [`rept_core::engine::EngineCore`] — which owns the engine-specific
//! state of a run (per-worker workers, fused hash groups, or the fused
//! sorted layout with its shared structures) behind four operations:
//! `ingest_batch`, `compact`, `snapshot_counters`, `finalize`.
//!
//! * **Batch** (`Rept::run*`, the figure binaries, the benches):
//!   construct a core, **ingest everything, then finalize**. Threaded
//!   runs construct one core per thread over a subset of hash groups
//!   and combine the finalized aggregates.
//! * **Resume** ([`rept_core::resume::ResumableRun`]): the same core
//!   fed batch by batch, plus the RPCK v4 checkpoint codec (v1–v3
//!   blobs still restore). Results are independent of batch
//!   boundaries, so kill-and-resume is bit-identical.
//! * **Serve** ([`rept_serve::ServeCore`]): an ingest thread around a
//!   resumable run, snapshot-isolated queries, checkpoint rotation.
//!
//! Because batch, resume and serve execute identical code, their
//! bit-identical agreement holds by construction; the proptests pin it
//! down across engines and duplicate-edge streams.
//!
//! On the sorted engine the core also picks the strongest structure
//! sharing a layout admits: all *full* hash groups share one neighbor
//! structure walk (tag column per group), and a *remainder* group
//! (`c mod m ≠ 0`) is folded into that same walk through a masked tag
//! column ([`rept_graph::masked_tagged::MaskedSortedTaggedAdjacency`])
//! instead of paying its own structure walk per edge.
//!
//! ## Quickstart: batch estimation
//!
//! ```
//! use rept::core::{Rept, ReptConfig};
//! use rept::gen::{GeneratorConfig, barabasi_albert};
//! use rept::exact::StreamingExact;
//!
//! // A small synthetic stream.
//! let stream = barabasi_albert(&GeneratorConfig::new(500, 42), 5);
//!
//! // Ground truth.
//! let mut exact = StreamingExact::new();
//! for &e in &stream { exact.process(e); }
//!
//! // REPT with m = 4 (sampling probability 1/4) and c = 4 processors.
//! let cfg = ReptConfig::new(4, 4).with_seed(7);
//! let est = Rept::new(cfg).run_sequential(stream.iter().copied());
//!
//! let tau = exact.global() as f64;
//! let rel_err = (est.global - tau).abs() / tau;
//! assert!(rel_err < 0.5, "estimate {} vs exact {tau}", est.global);
//! ```
//!
//! ## Engine selection
//!
//! The three engines are interchangeable and **bit-identical**; they
//! differ only in cost (see `BENCH_throughput.json` for measurements).
//! `Engine::FusedSorted` is the default; `Engine::PerWorker` is the
//! paper's cost model and the reference oracle:
//!
//! ```
//! use rept::core::{Engine, Rept, ReptConfig};
//! use rept::gen::{GeneratorConfig, barabasi_albert};
//!
//! let stream = barabasi_albert(&GeneratorConfig::new(300, 1), 4);
//! let rept = Rept::new(ReptConfig::new(4, 8).with_seed(3));
//!
//! let oracle = rept.run(Engine::PerWorker, &stream);
//! for engine in Engine::all() {
//!     let est = rept.run(engine, &stream);
//!     assert_eq!(est.global, oracle.global, "{}", engine.name());
//!     assert_eq!(est.locals, oracle.locals);
//! }
//! # assert_eq!(Engine::from_name("fused-sorted"), Some(Engine::default()));
//! ```
//!
//! ## A serve round-trip
//!
//! The serving subsystem answers queries while the stream is still
//! running, over TCP or in process; estimates cross the wire
//! bit-identically (shortest-roundtrip float formatting):
//!
//! ```
//! use rept::core::{Rept, ReptConfig};
//! use rept::graph::edge::Edge;
//! use rept::serve::{Client, ServeConfig, Server};
//!
//! let stream = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)];
//! let cfg = ReptConfig::new(2, 2).with_seed(7);
//! let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());
//!
//! let server = Server::start(
//!     ServeConfig::new(cfg).with_snapshot_every(1),
//!     "127.0.0.1:0",
//!     1,
//! ).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ingest(&stream).unwrap();
//! assert_eq!(client.flush().unwrap(), 3);
//! let global = client.query_global().unwrap();
//! assert_eq!(global.tau, oracle.global); // exact, through the wire
//! drop(client);
//! assert_eq!(server.shutdown().global, oracle.global);
//! ```

pub use rept_baselines as baselines;
pub use rept_core as core;
pub use rept_exact as exact;
pub use rept_gen as gen;
pub use rept_graph as graph;
pub use rept_hash as hash;
pub use rept_metrics as metrics;
pub use rept_serve as serve;
pub use rept_shard as shard;

// Compile-and-run the code blocks of the hand-written docs as doctests
// (`cargo test --doc`): `rust` fences must build against the public API,
// so the README can never drift from the code. Transcript/diagram fences
// are tagged `text`/`console` and are skipped.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../docs/ARCHITECTURE.md")]
mod architecture_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../docs/PROTOCOL.md")]
mod protocol_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../docs/DURABILITY.md")]
mod durability_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../docs/OBSERVABILITY.md")]
mod observability_doctests {}
