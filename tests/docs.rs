//! Documentation honesty tests: the protocol reference must cover every
//! command the parser knows, and the hand-written docs must not carry
//! dead relative links. The code blocks inside `README.md` and
//! `docs/*.md` are compiled separately, as doctests, through the
//! `#[cfg(doctest)]` includes in `src/lib.rs`.

use std::path::{Path, PathBuf};

use rept::serve::protocol::COMMAND_FORMS;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// Every `Command` variant in `protocol.rs` must appear in
/// `COMMAND_FORMS` (scanned from the source, so a newly added variant
/// cannot dodge the table), and every documented wire form must appear
/// in `docs/PROTOCOL.md`.
#[test]
fn protocol_doc_covers_every_command_variant() {
    // 1. Scan the source for the enum's variants.
    let source = read("crates/rept-serve/src/protocol.rs");
    let body_start = source
        .find("pub enum Command {")
        .expect("Command enum in protocol.rs");
    let body = &source[body_start..];
    let body = &body[..body.find("\n}").expect("enum end")];
    let mut variants = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        // Variant lines look like `Name,` / `Name(args),` at one indent
        // level; doc comments and the header are filtered out.
        if line.starts_with("///") || line.starts_with("pub enum") || line.is_empty() {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if !name.is_empty() && name.chars().next().unwrap().is_ascii_uppercase() {
            variants.push(name);
        }
    }
    assert!(
        variants.len() >= 20,
        "variant scan looks broken: {variants:?}"
    );

    // 2. The table covers exactly the scanned variants, in order.
    let table: Vec<&str> = COMMAND_FORMS.iter().map(|(v, _)| *v).collect();
    assert_eq!(
        variants, table,
        "COMMAND_FORMS out of sync with the Command enum — update both \
         the table and docs/PROTOCOL.md"
    );

    // 3. Every wire form appears in the protocol reference.
    let doc = read("docs/PROTOCOL.md");
    for (variant, form) in COMMAND_FORMS {
        assert!(
            doc.contains(form),
            "docs/PROTOCOL.md does not document {variant} (expected the \
             wire form {form:?} to appear)"
        );
    }
}

/// Extracts `[text](target)` link targets from markdown, skipping
/// fenced code blocks (transcripts contain bracket-like noise).
fn markdown_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else {
                break;
            };
            links.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
    }
    links
}

/// Relative links in the hand-written docs must point at files that
/// exist — a rename or move must not leave dead links behind.
#[test]
fn docs_have_no_dead_relative_links() {
    let docs = [
        "README.md",
        "docs/ARCHITECTURE.md",
        "docs/PROTOCOL.md",
        "docs/DURABILITY.md",
        "docs/OBSERVABILITY.md",
    ];
    for doc in docs {
        let text = read(doc);
        let dir = repo_root().join(doc);
        let dir = dir.parent().unwrap_or_else(|| Path::new("."));
        for link in markdown_links(&text) {
            // External links and intra-page anchors are out of scope.
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
                || link.starts_with('#')
            {
                continue;
            }
            let path = link.split('#').next().unwrap_or(&link);
            let target = dir.join(path);
            assert!(
                target.exists(),
                "{doc}: dead relative link {link:?} (resolved to {target:?})"
            );
        }
    }
}

/// The README's bench tables must keep citing the committed result
/// files, and those files must hold the sections the tables are
/// sourced from.
#[test]
fn readme_bench_tables_cite_committed_results() {
    let readme = read("README.md");
    assert!(readme.contains("BENCH_throughput.json"));
    assert!(readme.contains("BENCH_serve.json"));
    let serve = read("BENCH_serve.json");
    assert!(
        serve.contains("\"tenant_scaling\""),
        "BENCH_serve.json lost its tenant_scaling section"
    );
    assert!(
        serve.contains("\"host_cores\""),
        "BENCH_serve.json must record host_cores"
    );
    assert!(
        serve.contains("\"journal_overhead\""),
        "BENCH_serve.json lost its journal_overhead section"
    );
    assert!(
        serve.contains("\"quota_enforcement\""),
        "BENCH_serve.json lost its quota_enforcement section"
    );
    assert!(
        serve.contains("\"metrics_overhead\""),
        "BENCH_serve.json lost its metrics_overhead section"
    );
    assert!(
        serve.contains("\"shard_scaling\""),
        "BENCH_serve.json lost its shard_scaling section"
    );
    let throughput = read("BENCH_throughput.json");
    assert!(throughput.contains("\"host_cores\""));
}
