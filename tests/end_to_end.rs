//! Cross-crate integration: generator → exact → estimators → metrics.

use rept::baselines::traits::StreamingTriangleCounter;
use rept::baselines::{Mascot, ParallelAveraged, TriestImpr};
use rept::core::cluster::{run_cluster, ClusterConfig};
use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::{DatasetId, GeneratorConfig};
use rept::metrics::montecarlo::{run_trials, TrialOutput};

/// A small but non-trivial stream shared by several tests.
fn test_stream() -> Vec<rept::graph::Edge> {
    let cfg = GeneratorConfig::new(400, 13);
    rept::gen::stream_order(rept::gen::planted_cliques(&cfg, 4, 12, 600), 3)
}

#[test]
fn full_pipeline_produces_consistent_estimates() {
    let stream = test_stream();
    let gt = GroundTruth::compute(&stream);
    assert!(gt.tau > 500, "fixture should have plenty of triangles");

    let result = run_trials(30, 0, &gt, |seed| {
        let cfg = ReptConfig::new(5, 5).with_seed(seed);
        let est = Rept::new(cfg).run_sequential(stream.iter().copied());
        TrialOutput {
            global: est.global,
            locals: est.locals,
        }
    });
    // Unbiased estimator, 30 trials: the mean should be within a few
    // standard errors of τ.
    assert!(
        result.global.relative_bias() < 0.1,
        "relative bias {} too large",
        result.global.relative_bias()
    );
    assert!(result.global.nrmse < 0.5);
    let local = result.local_nrmse.expect("locals tracked");
    assert!(local.is_finite() && local > 0.0);
}

#[test]
fn all_drivers_agree_bit_for_bit() {
    let stream = test_stream();
    for (m, c) in [(4u64, 3u64), (4, 4), (3, 9), (3, 11)] {
        let rept = Rept::new(ReptConfig::new(m, c).with_seed(77));
        let seq = rept.run_sequential(stream.iter().copied());
        let thr = rept.run_threaded(&stream, 4);
        let clu = run_cluster(&rept, &stream, &ClusterConfig::default());
        assert_eq!(seq.global, thr.global, "threaded (m={m}, c={c})");
        assert_eq!(seq.global, clu.estimate.global, "cluster (m={m}, c={c})");
        assert_eq!(seq.locals, thr.locals);
        assert_eq!(seq.locals, clu.estimate.locals);
    }
}

#[test]
fn registry_dataset_roundtrip_through_io() {
    // Dataset → binary file → back → same ground truth.
    let dataset = DatasetId::YoutubeSim.dataset_scaled(0.05);
    let dir = std::env::temp_dir().join("rept-e2e-io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("youtube.bin");
    rept::graph::io::write_binary_file(&path, &dataset.stream).unwrap();
    let restored = rept::graph::io::read_binary_file(&path).unwrap();
    assert_eq!(restored, dataset.stream);
    let a = GroundTruth::compute(&dataset.stream);
    let b = GroundTruth::compute(&restored);
    assert_eq!(a.tau, b.tau);
    assert_eq!(a.eta, b.eta);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rept_and_baselines_are_all_roughly_unbiased_on_a_registry_stream() {
    let dataset = DatasetId::WebGoogleSim.dataset_scaled(0.08);
    let gt = GroundTruth::compute(&dataset.stream);
    let tau = gt.tau as f64;
    assert!(gt.tau > 100);
    let trials = 60u64;

    let mean_of = |f: &mut dyn FnMut(u64) -> f64| -> f64 {
        (0..trials).map(&mut *f).sum::<f64>() / trials as f64
    };

    let rept_mean = mean_of(&mut |s| {
        Rept::new(ReptConfig::new(4, 4).with_seed(s).with_locals(false))
            .run_sequential(dataset.stream.iter().copied())
            .global
    });
    let mascot_mean = mean_of(&mut |s| {
        let mut p =
            ParallelAveraged::new(4, |i| Mascot::new(0.25, s * 31 + i as u64).without_locals());
        p.process_stream(dataset.stream.iter().copied());
        p.global_estimate()
    });
    let budget = dataset.stream.len() / 4;
    let triest_mean = mean_of(&mut |s| {
        let mut p = ParallelAveraged::new(4, |i| {
            TriestImpr::new(budget, s * 31 + i as u64).without_locals()
        });
        p.process_stream(dataset.stream.iter().copied());
        p.global_estimate()
    });

    for (name, mean) in [
        ("REPT", rept_mean),
        ("MASCOT", mascot_mean),
        ("TRIEST", triest_mean),
    ] {
        assert!(
            (mean - tau).abs() < tau * 0.15,
            "{name} mean {mean} vs τ {tau}"
        );
    }
}

#[test]
fn eta_hat_estimates_eta_on_real_streams() {
    // η̂ = m³/c Σ η⁽ⁱ⁾ should land near the exact η in StrictNonLast
    // mode (unbiased) — end-to-end across gen, exact and core.
    let stream = test_stream();
    let gt = GroundTruth::compute(&stream);
    assert!(gt.eta > 1000, "need a pair-rich stream, got η = {}", gt.eta);
    let trials = 80u64;
    let mean: f64 = (0..trials)
        .map(|s| {
            let cfg = ReptConfig::new(3, 3)
                .with_seed(s)
                .with_locals(false)
                .with_eta(true)
                .with_eta_mode(rept::core::EtaMode::StrictNonLast);
            Rept::new(cfg)
                .run_sequential(stream.iter().copied())
                .eta_hat
                .expect("eta tracked")
        })
        .sum::<f64>()
        / trials as f64;
    let eta = gt.eta as f64;
    assert!(
        (mean - eta).abs() < eta * 0.25,
        "E[η̂] = {mean} too far from η = {eta}"
    );
}

#[test]
fn windowed_streams_compose_with_estimators() {
    // The anomaly-detection pattern: per-window estimates vs per-window
    // exact counts.
    let stream = test_stream();
    for (i, window) in rept::graph::stream::windows(&stream, 400).enumerate() {
        let gt = GroundTruth::compute(window);
        let est = Rept::new(ReptConfig::new(3, 3).with_seed(i as u64).with_locals(false))
            .run_sequential(window.iter().copied());
        if gt.tau > 200 {
            let rel = (est.global - gt.tau as f64).abs() / gt.tau as f64;
            assert!(
                rel < 1.0,
                "window {i}: estimate {} vs {}",
                est.global,
                gt.tau
            );
        }
    }
}
