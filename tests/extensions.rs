//! Integration tests for the library extensions beyond the paper's core:
//! planning/confidence intervals, duplicate-robust streaming, timed
//! intervals, tabulation hashing, and the DOULION baseline.

use rept::baselines::traits::StreamingTriangleCounter;
use rept::core::planning::{confidence_interval, plan, IntervalMethod};
use rept::core::worker::SemiTriangleWorker;
use rept::core::{EtaMode, Rept, ReptConfig};
use rept::exact::node_iterator::node_iterator_count;
use rept::exact::{forward_count, GroundTruth};
use rept::gen::{barabasi_albert, stream_order, GeneratorConfig};
use rept::graph::csr::CsrGraph;
use rept::graph::duplicates::{dedup_bloom, dedup_exact};
use rept::graph::edge::Edge;
use rept::graph::timed::{edges_of, time_intervals, with_uniform_times};
use rept::hash::tabulation::TabulationHasher;

fn stream() -> Vec<Edge> {
    stream_order(barabasi_albert(&GeneratorConfig::new(600, 5), 4), 11)
}

#[test]
fn three_exact_implementations_agree_on_registry_scale_input() {
    let stream = stream();
    let csr = CsrGraph::from_edges(&stream);
    let fwd = forward_count(&csr);
    let ni = node_iterator_count(&csr);
    assert_eq!(fwd, ni);
    let gt = GroundTruth::compute(&stream); // internally checks streaming vs forward
    assert_eq!(gt.tau, fwd.global);
}

#[test]
fn planner_output_is_achievable() {
    let stream = stream();
    let gt = GroundTruth::compute(&stream);
    let per_proc = stream.len() as u64 / 6;
    let plan = plan(
        stream.len() as u64,
        per_proc,
        0.5,
        64,
        gt.tau as f64,
        gt.eta as f64,
    )
    .expect("target reachable");
    assert!(plan.m >= 2 && plan.c >= 1);

    // Run the planned configuration; over trials the NRMSE should land
    // near (at most ~2× of) the prediction.
    let trials = 60u64;
    let mse: f64 = (0..trials)
        .map(|s| {
            let est = Rept::new(
                ReptConfig::new(plan.m, plan.c)
                    .with_seed(s)
                    .with_locals(false),
            )
            .run_sequential(stream.iter().copied());
            (est.global - gt.tau as f64).powi(2)
        })
        .sum::<f64>()
        / trials as f64;
    let measured_nrmse = mse.sqrt() / gt.tau as f64;
    assert!(
        measured_nrmse < plan.predicted_nrmse * 2.0 + 0.05,
        "measured {measured_nrmse} vs predicted {}",
        plan.predicted_nrmse
    );
}

#[test]
fn confidence_intervals_have_reasonable_coverage_on_graph_streams() {
    let stream = stream();
    let gt = GroundTruth::compute(&stream);
    let trials: usize = 120;
    let covered = (0..trials as u64)
        .filter(|&s| {
            let est = Rept::new(ReptConfig::new(4, 4).with_seed(s).with_eta(true))
                .run_sequential(stream.iter().copied());
            confidence_interval(&est, 0.95, IntervalMethod::Gaussian).contains(gt.tau as f64)
        })
        .count();
    assert!(
        covered * 100 >= trials * 75,
        "95% Gaussian CI covered only {covered}/{trials}"
    );
}

#[test]
fn duplicate_filters_restore_exact_counts() {
    let clean = stream();
    let gt = GroundTruth::compute(&clean);
    // Duplicate every edge 3×, shuffle.
    let dirty = stream_order(
        clean.iter().flat_map(|&e| [e, e, e]).collect::<Vec<_>>(),
        77,
    );
    // Exact dedup restores the multiset exactly (order differs; τ is
    // order-invariant).
    let filtered = dedup_exact(&dirty);
    assert_eq!(filtered.len(), clean.len());
    assert_eq!(GroundTruth::compute(&filtered).tau, gt.tau);
    // Bloom at 0.5% loses at most a sliver of edges and triangles.
    let bloomed = dedup_bloom(&dirty, 0.005, 3);
    assert!(bloomed.len() as f64 > clean.len() as f64 * 0.98);
    let bloom_tau = GroundTruth::compute(&bloomed).tau;
    assert!(
        bloom_tau as f64 > gt.tau as f64 * 0.9,
        "bloom dedup lost too many triangles: {bloom_tau} vs {}",
        gt.tau
    );
}

#[test]
fn timed_intervals_compose_with_rept() {
    // Two bursts separated by silence: interval counts reflect it.
    let burst = rept::gen::complete(12); // τ = 220 per burst
    let mut timed = with_uniform_times(&burst, 0, 1);
    timed.extend(with_uniform_times(&burst, 1_000, 1));
    let intervals: Vec<(u64, u64)> = time_intervals(&timed, 100)
        .map(|(k, edges)| {
            let gt = GroundTruth::compute(&edges_of(edges).collect::<Vec<_>>());
            (k, gt.tau)
        })
        .collect();
    assert_eq!(intervals.first(), Some(&(0, 220)));
    assert_eq!(intervals.last(), Some(&(10, 220)));
    assert!(intervals[1..10].iter().all(|&(_, tau)| tau == 0));
}

#[test]
fn tabulation_hash_rept_is_also_unbiased() {
    // Swap the partition hash for the provably-independent tabulation
    // family; the estimator math is hash-agnostic, so the estimate must
    // stay unbiased.
    let stream = rept::gen::complete(12); // τ = 220
    let m = 4u64;
    let trials = 400;
    let mean: f64 = (0..trials)
        .map(|seed| {
            let hasher = TabulationHasher::new(seed);
            let mut workers: Vec<SemiTriangleWorker> = (0..m)
                .map(|_| SemiTriangleWorker::new(false, false, EtaMode::PaperInit))
                .collect();
            for &e in &stream {
                let (u, v) = e.as_u64_pair();
                let cell = hasher.edge_cell(u, v, m) as usize;
                for (i, w) in workers.iter_mut().enumerate() {
                    let closed = w.observe(e);
                    if i == cell {
                        w.store(e, closed);
                    }
                }
            }
            m as f64 * workers.iter().map(|w| w.tau()).sum::<u64>() as f64
        })
        .sum::<f64>()
        / trials as f64;
    assert!((mean - 220.0).abs() < 220.0 * 0.1, "mean {mean}");
}

#[test]
fn doulion_tracks_exact_adapter_at_p_one() {
    let stream = stream();
    let mut d = rept::baselines::Doulion::new(1.0, 0);
    let mut e = rept::baselines::ExactAdapter::new();
    for &edge in &stream {
        d.process(edge);
        e.process(edge);
    }
    assert_eq!(d.finalize(), e.global_estimate());
}

#[test]
fn memory_accounting_is_comparable_across_methods() {
    // At equal sampling parameters, REPT's per-processor memory and one
    // MASCOT instance's memory should be within the same order — the
    // premise of the paper's "same memory" comparisons.
    let stream = stream();
    let p = 0.25;
    let mut mascot = rept::baselines::Mascot::new(p, 3);
    for &e in &stream {
        mascot.process(e);
    }
    let est = Rept::new(ReptConfig::new(4, 4).with_seed(3)).run_sequential(stream.iter().copied());
    let rept_per_proc = est.diagnostics.total_bytes / 4;
    let ratio = rept_per_proc as f64 / mascot.memory_bytes() as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "memory ratio {ratio} out of band: rept/proc {rept_per_proc}, mascot {}",
        mascot.memory_bytes()
    );
}
