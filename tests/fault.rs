//! Fault-injection tests of the durability layer: kill the serving
//! subsystem at arbitrary points — mid-stream with unjournaled batches
//! never acked, after a checkpoint, *between* the checkpoint rename and
//! the journal-segment truncation — and prove recovery yields exactly
//! the acked prefix, bit-identical to an uninterrupted run, across all
//! three engines and multi-tenant routers. Plus byte-level torn-write
//! sweeps: the journal's final record truncated at every byte boundary
//! and CRC-corrupted mid-file, and the tenant manifest truncated at
//! every byte boundary (checkpoint-header fallback). The shard tier
//! rides the same contract: a kill-point sweep shuts a TCP shard server
//! down at arbitrary batch boundaries and proves degraded-but-answering
//! health, journal-replay restart, and bit-identical rejoin.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use rept::core::{Engine, Rept, ReptConfig};
use rept::graph::edge::Edge;
use rept::serve::protocol::{Scope, TenantOptions};
use rept::serve::{RouterConfig, ServeConfig, ServeCore, SyncPolicy, TenantRouter};

/// Strategy: a raw stream that keeps duplicate edges (only self-loops
/// are dropped) — duplicates must survive journal replay too.
fn arb_stream_with_dups(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    vec((0..n, 0..n), 1..max_edges).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(u, v)| Edge::try_new(u, v))
            .collect()
    })
}

/// A per-test-case unique serving directory (checkpoint + journal).
fn unique_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rept-fault-{tag}-{}-{n}", std::process::id()))
}

/// Recursively snapshots every file under `root`. Combined with
/// [`restore_dir`] this emulates a kill: whatever the process wrote
/// after the freeze never reached the disk image we restart from.
/// (Valid for acked writes because `ServeCore::ingest` under a journal
/// blocks until the record is fsynced — the freeze point is a real
/// point-in-time crash state.)
fn freeze_dir(root: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let bytes = std::fs::read(&path).expect("freeze file");
                files.push((path, bytes));
            }
        }
    }
    files
}

/// Restores a frozen directory image, discarding whatever was written
/// after the freeze.
fn restore_dir(root: &Path, frozen: &[(PathBuf, Vec<u8>)]) {
    std::fs::remove_dir_all(root).ok();
    std::fs::create_dir_all(root).expect("recreate root");
    for (path, bytes) in frozen {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("recreate dir");
        }
        std::fs::write(path, bytes).expect("restore frozen file");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// THE durability property: a journaled core killed at an arbitrary
    /// acked position recovers **exactly** the acked prefix — nothing
    /// lost (every ack was preceded by an fsync), nothing invented —
    /// and the recovered state is bit-identical to an uninterrupted run
    /// over that prefix, on every engine. The kill lands anywhere
    /// relative to the last checkpoint: before the first one (journal
    /// replays from zero), right after one (empty tail), or mid-tail.
    #[test]
    fn journaled_kill_recovers_exactly_the_acked_prefix(
        stream in arb_stream_with_dups(24, 90),
        m in 2u64..5,
        c in 1u64..10,
        seed in any::<u64>(),
        ckpt_sel in any::<u64>(),
        kill_sel in any::<u64>(),
        batch_sel in any::<u64>(),
    ) {
        let cfg = ReptConfig::new(m, c).with_seed(seed).with_eta(true);
        let full_oracle = Rept::new(cfg).run_sequential(stream.iter().copied());
        let batch = 1 + (batch_sel % 17) as usize;
        let ckpt_at = (ckpt_sel as usize) % (stream.len() + 1);
        let kill_at = ckpt_at + (kill_sel as usize) % (stream.len() - ckpt_at + 1);

        for engine in Engine::all() {
            let root = unique_root(engine.name());
            std::fs::remove_dir_all(&root).ok();
            std::fs::create_dir_all(&root).expect("mk root");
            let serve_cfg = ServeConfig::new(cfg)
                .with_engine(engine)
                .with_checkpoint(root.join("serve.rpck"), None)
                .with_snapshot_every(32)
                .with_journal();

            let core = ServeCore::start(serve_cfg.clone()).expect("start");
            for chunk in stream[..ckpt_at].chunks(batch) {
                core.ingest(chunk.to_vec()).expect("acked");
            }
            core.checkpoint().expect("checkpoint");
            for chunk in stream[ckpt_at..kill_at].chunks(batch) {
                core.ingest(chunk.to_vec()).expect("acked");
            }
            // Kill: freeze the acked disk state, let the core die (its
            // shutdown checkpoint is part of what the crash destroys),
            // restore the crash-time image.
            let frozen = freeze_dir(&root);
            drop(core);
            restore_dir(&root, &frozen);

            let resumed = ServeCore::start(serve_cfg).expect("recover");
            prop_assert_eq!(
                resumed.position(),
                kill_at as u64,
                "acked prefix recovered losslessly ({})",
                engine.name()
            );
            resumed.flush();
            let snap = resumed.snapshot();
            prop_assert_eq!(
                snap.durability.replayed,
                (kill_at - ckpt_at) as u64,
                "journal tail above the checkpoint replayed"
            );
            let prefix_oracle =
                Rept::new(cfg).run_sequential(stream[..kill_at].iter().copied());
            prop_assert_eq!(snap.global, prefix_oracle.global, "{}", engine.name());
            prop_assert_eq!(&snap.locals, &prefix_oracle.locals);

            // The recovered core keeps serving: feed the unacked
            // remainder and land bit-identical to the full run.
            for chunk in stream[kill_at..].chunks(batch) {
                resumed.ingest(chunk.to_vec()).expect("acked");
            }
            resumed.flush();
            let snap = resumed.snapshot();
            prop_assert_eq!(snap.global, full_oracle.global);
            prop_assert_eq!(&snap.locals, &full_oracle.locals);
            resumed.shutdown();
            std::fs::remove_dir_all(&root).ok();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Router-level losslessness: a multi-tenant router (distinct
    /// seeds/engines per tenant) killed at an acked position restores
    /// *every* tenant to exactly that position, bit-identical to each
    /// tenant's standalone oracle.
    #[test]
    fn journaled_router_kill_recovers_every_tenant(
        stream in arb_stream_with_dups(24, 70),
        seed in any::<u64>(),
        kill_sel in any::<u64>(),
        batch_sel in any::<u64>(),
    ) {
        let base = ReptConfig::new(3, 5).with_seed(seed).with_eta(true);
        let batch = 1 + (batch_sel % 13) as usize;
        let kill_at = (kill_sel as usize) % (stream.len() + 1);
        let root = unique_root("router");
        std::fs::remove_dir_all(&root).ok();
        let cfg = RouterConfig::new(
            ServeConfig::new(base).with_snapshot_every(32).with_journal(),
        )
        .with_root_dir(root.clone());

        let router = TenantRouter::start(cfg.clone()).expect("start");
        router
            .create(
                "alpha",
                &TenantOptions {
                    engine: Some(Engine::PerWorker),
                    seed: Some(seed ^ 0x9e37_79b9),
                    ..TenantOptions::default()
                },
            )
            .expect("create alpha");
        for chunk in stream[..kill_at].chunks(batch) {
            router.ingest(&Scope::All, chunk.to_vec()).expect("acked");
        }
        let frozen = freeze_dir(&root);
        drop(router.shutdown()); // shutdown checkpoints are crash-destroyed…
        restore_dir(&root, &frozen); // …by restoring the crash-time image

        let resumed = TenantRouter::start(cfg).expect("recover");
        prop_assert_eq!(resumed.len(), 2, "both tenants resurrected");
        for name in ["default", "alpha"] {
            prop_assert_eq!(
                resumed.tenant(name).unwrap().position(),
                kill_at as u64,
                "tenant {} lossless",
                name
            );
        }
        resumed.flush_all();
        let default_oracle =
            Rept::new(base).run_sequential(stream[..kill_at].iter().copied());
        let snap = resumed.tenant("default").unwrap().snapshot();
        prop_assert_eq!(snap.global, default_oracle.global);
        prop_assert_eq!(&snap.locals, &default_oracle.locals);
        let alpha_oracle = Rept::new(base.with_seed(seed ^ 0x9e37_79b9))
            .run_sequential(stream[..kill_at].iter().copied());
        let snap = resumed.tenant("alpha").unwrap().snapshot();
        prop_assert_eq!(snap.global, alpha_oracle.global);
        prop_assert_eq!(&snap.locals, &alpha_oracle.locals);
        resumed.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
}

/// A small fixed stream with triangles (and a duplicate edge) for the
/// deterministic byte-level tests.
fn fixed_stream() -> Vec<Edge> {
    [
        (0, 1),
        (1, 2),
        (0, 2),
        (2, 3),
        (3, 4),
        (2, 4),
        (4, 5),
        (5, 0),
        (0, 4),
        (1, 3),
        (0, 1), // duplicate
        (3, 5),
    ]
    .into_iter()
    .map(|(u, v)| Edge::new(u, v))
    .collect()
}

fn fixed_cfg() -> ReptConfig {
    ReptConfig::new(3, 4).with_seed(7).with_eta(true)
}

/// Kill between the checkpoint's atomic rename and the journal-segment
/// truncation: the restored image holds the *new* checkpoint plus the
/// *stale* pre-truncation journal whose records all lie below it.
/// Recovery must skip/retire the stale records — position comes from
/// the checkpoint, nothing is replayed twice.
#[test]
fn stale_journal_surviving_a_checkpoint_is_skipped() {
    let stream = fixed_stream();
    let cfg = fixed_cfg();
    for engine in Engine::all() {
        let root = unique_root(&format!("stale-{}", engine.name()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).expect("mk root");
        let serve_cfg = ServeConfig::new(cfg)
            .with_engine(engine)
            .with_checkpoint(root.join("serve.rpck"), None)
            .with_journal();

        let core = ServeCore::start(serve_cfg.clone()).expect("start");
        core.ingest(stream[..8].to_vec()).expect("acked");
        // The journal as it stood the instant before the checkpoint…
        let pre_truncation_journal: Vec<(PathBuf, Vec<u8>)> = freeze_dir(&root)
            .into_iter()
            .filter(|(p, _)| p.to_string_lossy().contains(".wal."))
            .collect();
        assert!(!pre_truncation_journal.is_empty(), "journal on disk");
        core.checkpoint().expect("checkpoint");
        // …composed with the checkpoint it raced: rename done,
        // truncation not yet.
        let mut image: Vec<(PathBuf, Vec<u8>)> = freeze_dir(&root)
            .into_iter()
            .filter(|(p, _)| !p.to_string_lossy().contains(".wal."))
            .collect();
        image.extend(pre_truncation_journal);
        drop(core);
        restore_dir(&root, &image);

        let resumed = ServeCore::start(serve_cfg).expect("recover");
        assert_eq!(
            resumed.position(),
            8,
            "checkpoint position, no double replay"
        );
        resumed.flush();
        assert_eq!(
            resumed.snapshot().durability.replayed,
            0,
            "stale tail skipped"
        );
        resumed.ingest(stream[8..].to_vec()).expect("acked");
        resumed.flush();
        let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());
        let snap = resumed.snapshot();
        assert_eq!(snap.global, oracle.global, "{}", engine.name());
        assert_eq!(snap.locals, oracle.locals);
        resumed.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
}

/// Byte-level torn-write sweep: truncate the journal at **every** byte
/// boundary (a kill mid-`write(2)` can leave any prefix) and recover.
/// The torn record — and only the torn record — is dropped; every
/// complete record before it replays; the recovered state is
/// bit-identical to an uninterrupted run over the surviving prefix.
#[test]
fn torn_journal_tail_drops_exactly_the_torn_record() {
    let stream = fixed_stream();
    let cfg = fixed_cfg();
    let root = unique_root("torn");
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mk root");
    let serve_cfg = ServeConfig::new(cfg)
        .with_checkpoint(root.join("serve.rpck"), None)
        .with_journal();

    // Three acked records of 5, 4 and 3 edges; no checkpoint, so the
    // journal alone carries the stream.
    let core = ServeCore::start(serve_cfg.clone()).expect("start");
    core.ingest(stream[..5].to_vec()).expect("acked");
    core.ingest(stream[5..9].to_vec()).expect("acked");
    core.ingest(stream[9..12].to_vec()).expect("acked");
    let frozen = freeze_dir(&root);
    drop(core);

    let segment = root.join(format!("serve.wal.{:020}", 0));
    let full = frozen
        .iter()
        .find(|(p, _)| p == &segment)
        .map(|(_, b)| b.len())
        .expect("single journal segment");
    // Layout: 12-byte segment header, then per record 8-byte header +
    // 8-byte position prefix + 8 bytes per edge → 56/48/40 bytes.
    let record_ends = [12, 12 + 56, 12 + 56 + 48, 12 + 56 + 48 + 40];
    assert_eq!(
        full,
        *record_ends.last().unwrap(),
        "expected journal layout"
    );
    let oracles: Vec<_> = [0usize, 5, 9, 12]
        .iter()
        .map(|&n| Rept::new(cfg).run_sequential(stream[..n].iter().copied()))
        .collect();

    for cut in 0..full {
        restore_dir(&root, &frozen);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segment)
            .expect("open segment");
        file.set_len(cut as u64).expect("tear the tail");
        drop(file);

        // Recovery logs the drop to stderr and continues — a torn tail
        // is an expected crash artifact, never fatal.
        let resumed = ServeCore::start(serve_cfg.clone()).expect("torn tail is not fatal");
        // Exactly the records wholly below the cut replay.
        let survivor = record_ends.iter().filter(|&&end| end <= cut).count();
        let expect_edges = [0u64, 0, 5, 9][survivor]; // header alone = 0 edges
        assert_eq!(
            resumed.position(),
            expect_edges,
            "cut at byte {cut}: exactly the complete records replay"
        );
        resumed.flush();
        let snap = resumed.snapshot();
        let oracle = &oracles[survivor.saturating_sub(1)];
        assert_eq!(snap.global, oracle.global, "cut at byte {cut}");
        assert_eq!(snap.locals, oracle.locals, "cut at byte {cut}");
        resumed.shutdown();
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A flipped byte inside a mid-file record's payload fails that
/// record's CRC: it and everything after it are dropped (a record
/// cannot be trusted past a corruption), earlier records replay.
#[test]
fn crc_corrupt_record_is_dropped_with_its_suffix() {
    let stream = fixed_stream();
    let cfg = fixed_cfg();
    let root = unique_root("crc");
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mk root");
    let serve_cfg = ServeConfig::new(cfg)
        .with_checkpoint(root.join("serve.rpck"), None)
        .with_journal();

    let core = ServeCore::start(serve_cfg.clone()).expect("start");
    core.ingest(stream[..5].to_vec()).expect("acked");
    core.ingest(stream[5..9].to_vec()).expect("acked");
    core.ingest(stream[9..12].to_vec()).expect("acked");
    let frozen = freeze_dir(&root);
    drop(core);
    restore_dir(&root, &frozen);

    // Flip one byte in the second record's payload (the record spans
    // bytes 68..116; its payload starts 8 bytes in).
    let segment = root.join(format!("serve.wal.{:020}", 0));
    let mut bytes = std::fs::read(&segment).expect("read segment");
    bytes[12 + 56 + 8 + 11] ^= 0x40;
    std::fs::write(&segment, &bytes).expect("corrupt segment");

    let resumed = ServeCore::start(serve_cfg).expect("corruption is not fatal");
    assert_eq!(resumed.position(), 5, "only the first record replays");
    resumed.flush();
    let oracle = Rept::new(cfg).run_sequential(stream[..5].iter().copied());
    let snap = resumed.snapshot();
    assert_eq!(snap.global, oracle.global);
    assert_eq!(snap.locals, oracle.locals);
    resumed.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Under the batched sync policy acks do not imply durability, but
/// `FLUSH` is a barrier: everything acked before a flush survives a
/// kill right after it.
#[test]
fn batched_policy_flush_is_a_durability_barrier() {
    let stream = fixed_stream();
    let cfg = fixed_cfg();
    let root = unique_root("batched");
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mk root");
    let serve_cfg = ServeConfig::new(cfg)
        .with_checkpoint(root.join("serve.rpck"), None)
        .with_journal_sync(SyncPolicy::Batched);

    let core = ServeCore::start(serve_cfg.clone()).expect("start");
    core.ingest(stream[..9].to_vec()).expect("queued");
    core.flush(); // barrier: journal fsynced
    let frozen = freeze_dir(&root);
    drop(core);
    restore_dir(&root, &frozen);

    let resumed = ServeCore::start(serve_cfg).expect("recover");
    assert_eq!(resumed.position(), 9, "flushed prefix survives the kill");
    resumed.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Torn-write sweep over `tenant.meta`: truncate the manifest at every
/// byte boundary. Whatever survives, router startup recovers the
/// tenant — a parseable manifest is used directly; anything else falls
/// back to the RPCK checkpoint header, which carries the full config
/// and engine.
#[test]
fn torn_tenant_manifest_falls_back_to_the_checkpoint_header() {
    let stream = fixed_stream();
    let root = unique_root("meta-torn");
    std::fs::remove_dir_all(&root).ok();
    let cfg = RouterConfig::new(ServeConfig::new(fixed_cfg())).with_root_dir(root.clone());
    let router = TenantRouter::start(cfg.clone()).expect("start");
    router
        .create(
            "hash",
            &TenantOptions {
                engine: Some(Engine::FusedHash),
                seed: Some(5),
                ..TenantOptions::default()
            },
        )
        .expect("create");
    router
        .tenant("hash")
        .unwrap()
        .ingest(stream.clone())
        .expect("ingest");
    router.checkpoint_all().expect("checkpoint");
    router.shutdown();
    let frozen = freeze_dir(&root);

    let meta = root.join("hash").join("tenant.meta");
    let full = frozen
        .iter()
        .find(|(p, _)| p == &meta)
        .map(|(_, b)| b.len())
        .expect("manifest frozen");
    for cut in 0..=full {
        restore_dir(&root, &frozen);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&meta)
            .expect("open manifest");
        file.set_len(cut as u64).expect("tear the manifest");
        drop(file);

        let resumed = TenantRouter::start(cfg.clone())
            .unwrap_or_else(|e| panic!("cut at byte {cut}: startup failed: {e}"));
        {
            let core = resumed.tenant("hash").expect("tenant recovered");
            assert_eq!(core.config().engine, Engine::FusedHash, "cut at {cut}");
            assert_eq!(core.config().rept.seed, 5, "cut at {cut}");
            assert_eq!(core.position(), stream.len() as u64, "cut at {cut}");
        }
        resumed.shutdown();
    }
    std::fs::remove_dir_all(&root).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shard-loss kill-point sweep over real TCP: a shard server
    /// (journaled, checkpointed) is shut down at an arbitrary batch
    /// boundary. The coordinator discovers the loss on the next
    /// exchange, keeps acking ingest, and reports `degraded` health
    /// while answering queries from the surviving (smaller but valid)
    /// configuration. Restarting the shard server resumes it from its
    /// own checkpoint + journal tail; reviving it replays the
    /// coordinator's buffered batches above that position — and the
    /// rejoined cluster's query replies are bit-identical to an
    /// uninterrupted standalone core fed the same batches.
    #[test]
    fn shard_loss_degrades_then_rejoins_losslessly(
        stream in arb_stream_with_dups(20, 80),
        seed in any::<u64>(),
        kill_sel in any::<u64>(),
        batch_sel in any::<u64>(),
    ) {
        use rept::core::GroupSlice;
        use rept::serve::{protocol, Server};
        use rept::shard::{CoordinatorConfig, ShardCoordinator, ShardLink};

        // c=9, m=2 → 4 full groups + a remainder group = 5 groups over
        // 3 shards; shard 2 owns group 2 (2 workers), so the degraded
        // survivor configuration has c' = 7. Engines are swept by
        // tests/shard.rs; this sweep varies the kill point.
        let cfg = ReptConfig::new(2, 9).with_seed(seed).with_eta(true).with_locals(true);
        let engine = Engine::default();
        let batch = 1 + (batch_sel % 11) as usize;
        let batches: Vec<&[Edge]> = stream.chunks(batch).collect();
        let kill_at = (kill_sel as usize) % (batches.len() + 1);

        let root = unique_root("shard-loss");
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).expect("mk root");
        let mk_server = |i: u32| {
            Server::start(
                ServeConfig::new(cfg)
                    .with_engine(engine)
                    .with_snapshot_every(16)
                    .with_group_slice(GroupSlice::new(i, 3))
                    .with_checkpoint(root.join(format!("shard{i}.rpck")), None)
                    .with_journal(),
                "127.0.0.1:0",
                1,
            )
            .expect("shard server")
        };
        let mut servers: Vec<Option<Server>> = (0..3).map(mk_server).map(Some).collect();
        let links = servers
            .iter()
            .map(|s| ShardLink::connect(s.as_ref().expect("live").local_addr()).expect("link"))
            .collect();
        let mut coord = ShardCoordinator::start(
            CoordinatorConfig::new(cfg).with_engine(engine).with_snapshot_every(16),
            links,
        )
        .expect("coordinator");

        for (bi, chunk) in batches.iter().enumerate() {
            if bi == kill_at {
                servers[2].take().expect("not yet killed").shutdown();
            }
            coord.ingest(chunk.to_vec()).expect("ingest survives shard loss");
        }
        if kill_at == batches.len() {
            servers[2].take().expect("not yet killed").shutdown();
        }
        let position = coord.flush();
        prop_assert_eq!(position, stream.len() as u64);
        // Force one exchange so an end-of-stream kill is discovered too.
        let _ = coord.aggregates();
        let health = coord.health();
        prop_assert!(health.degraded(), "kill at batch {}/{}", kill_at, batches.len());
        prop_assert_eq!((health.alive, health.total), (2, 3));
        let degraded = coord.snapshot();
        prop_assert_eq!(degraded.c, 7, "survivors re-based to c' = 7");
        prop_assert!(degraded.global >= 0.0);

        // Restart the shard: checkpoint + journal bring back exactly
        // what it acked; the coordinator's buffer covers the rest.
        let revived_server = mk_server(2);
        coord
            .revive_shard(2, ShardLink::connect(revived_server.local_addr()).expect("link"))
            .expect("rejoin");
        servers[2] = Some(revived_server);
        prop_assert!(!coord.health().degraded());
        prop_assert_eq!(coord.flush(), stream.len() as u64);
        let rejoined = coord.snapshot();
        prop_assert_eq!(rejoined.c, 9);

        let standalone = ServeCore::start(
            ServeConfig::new(cfg).with_engine(engine).with_snapshot_every(16),
        )
        .expect("standalone");
        for chunk in &batches {
            standalone.ingest(chunk.to_vec()).expect("ingest");
        }
        standalone.flush();
        let want = standalone.snapshot();
        standalone.shutdown();
        prop_assert_eq!(
            protocol::format_global(&rejoined),
            protocol::format_global(&want)
        );
        prop_assert_eq!(
            protocol::format_top_k(&rejoined, 8),
            protocol::format_top_k(&want, 8)
        );
        for v in [0u32, 5, 11] {
            prop_assert_eq!(
                protocol::format_local(&rejoined, v),
                protocol::format_local(&want, v)
            );
        }

        for server in servers.into_iter().flatten() {
            server.shutdown();
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
