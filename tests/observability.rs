//! Observability acceptance suite: the `METRICS` exposition covers the
//! required series per tenant, `METRICS *` aggregates correctly into
//! `tenant="_all"` rows, `TRACE TAIL` drains slow-op events over the
//! wire, grammar errors come back as `ERR` lines, scraping never blocks
//! ingest, and histogram merging is exactly equivalent to recording
//! into a single histogram.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use rept::core::ReptConfig;
use rept::graph::edge::Edge;
use rept::metrics::registry::Histogram;
use rept::serve::{Client, RouterConfig, ServeConfig, Server};

/// A per-test unique scratch directory.
fn unique_root(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rept-obs-{tag}-{}-{n}", std::process::id()))
}

/// Extracts the value of a counter/gauge sample carrying exactly a
/// `tenant` label from exposition text.
fn sample(text: &str, name: &str, tenant: &str) -> Option<u64> {
    let prefix = format!("{name}{{tenant=\"{tenant}\"}} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .map(|v| v.parse().expect("integer sample"))
}

#[test]
fn metrics_scrape_covers_required_series() {
    let root = unique_root("scrape");
    let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(9))
        .with_snapshot_every(1)
        .with_journal();
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(root.clone()),
        "127.0.0.1:0",
        2,
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client
        .ingest(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
        .expect("ingest");
    client.flush().expect("flush");
    client.query_global().expect("query");
    let health = client.health().expect("health");
    assert!(
        health.contains("sync=per-record") && health.contains("last_group="),
        "HEALTH must report the sync policy and group-commit size: {health}"
    );

    let text = client.metrics().expect("scrape");

    // Ingest, journal, snapshot, typed-error and trace series — all
    // labelled with the current tenant.
    assert_eq!(sample(&text, "rept_ingest_edges_total", "default"), Some(3));
    assert_eq!(
        sample(&text, "rept_ingest_batches_total", "default"),
        Some(1)
    );
    for series in [
        "rept_journal_appends_total",
        "rept_journal_fsyncs_total",
        "rept_snapshots_published_total",
    ] {
        let v = sample(&text, series, "default").unwrap_or_else(|| panic!("{series} missing"));
        assert!(v >= 1, "{series} should have fired: {v}");
    }
    for series in [
        "rept_busy_rejections_total",
        "rept_quota_rejections_total",
        "rept_rejected_batches_total",
        "rept_dead_letters_total",
        "rept_trace_events_total",
        "rept_trace_dropped_total",
        "rept_queue_depth",
        "rept_stored_bytes",
        "rept_journal_lag_bytes",
        "rept_dlq_depth",
        "rept_degraded",
        "rept_last_group_commit",
    ] {
        assert!(
            sample(&text, series, "default").is_some(),
            "{series} missing from exposition:\n{text}"
        );
    }

    // Latency summaries: fsync + apply histograms and the per-verb
    // query latency with its extra label.
    assert!(text.contains("# TYPE rept_fsync_micros summary"));
    assert!(text.contains("rept_apply_micros_count{tenant=\"default\"} 1"));
    assert!(text.contains("rept_query_micros_count{tenant=\"default\",verb=\"global\"} 1"));

    // A single-tenant scrape carries no aggregate rows.
    assert!(!text.contains("tenant=\"_all\""));

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn metrics_all_aggregates_counters_not_gauges() {
    let root = unique_root("all");
    let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(11)).with_snapshot_every(1);
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(root.clone()),
        "127.0.0.1:0",
        2,
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.tenant_create("alpha", "").expect("create");
    client
        .ingest(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
        .expect("ingest default");
    client.use_tenant("alpha").expect("use");
    client
        .ingest(&[Edge::new(3, 4), Edge::new(4, 5)])
        .expect("ingest alpha");
    client.flush().expect("flush alpha");
    client.use_tenant("default").expect("back");
    client.flush().expect("flush default");

    let text = client.metrics_all().expect("scrape all");
    let default = sample(&text, "rept_ingest_edges_total", "default").expect("default row");
    let alpha = sample(&text, "rept_ingest_edges_total", "alpha").expect("alpha row");
    let all = sample(&text, "rept_ingest_edges_total", "_all").expect("_all row");
    assert_eq!((default, alpha), (3, 2));
    assert_eq!(all, default + alpha, "_all must be the cross-tenant sum");

    // Histogram aggregates merge counts; gauges are never aggregated.
    let applies = sample(&text, "rept_apply_micros_count", "_all").expect("_all summary");
    assert_eq!(applies, 2, "one apply per tenant");
    assert!(
        sample(&text, "rept_queue_depth", "_all").is_none(),
        "gauges must not grow _all rows"
    );

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn trace_tail_drains_slow_ops_over_the_wire() {
    let root = unique_root("trace");
    // Threshold zero: every instrumented op is "slow".
    let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(13))
        .with_snapshot_every(1)
        .with_slow_op_threshold(Duration::ZERO);
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(root.clone()),
        "127.0.0.1:0",
        2,
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client
        .ingest(&[Edge::new(0, 1), Edge::new(1, 2)])
        .expect("ingest");
    client.flush().expect("flush");

    let events = client.trace_tail(64).expect("trace");
    assert!(!events.is_empty(), "zero threshold must capture events");
    for line in &events {
        assert!(
            line.starts_with("at_us=") && line.contains(" op=") && line.contains(" micros="),
            "malformed trace line: {line}"
        );
    }
    assert!(
        events.iter().any(|l| l.contains("op=apply"))
            && events.iter().any(|l| l.contains("op=publish")),
        "apply and publish should both cross a zero threshold: {events:?}"
    );

    // The ring drains on read: an immediate second tail is empty.
    assert!(client.trace_tail(64).expect("second tail").is_empty());

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn observability_grammar_errors_keep_the_connection_open() {
    let root = unique_root("grammar");
    let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(17));
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(root.clone()),
        "127.0.0.1:0",
        1,
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for bad in [
        "METRICS junk",
        "METRICS * extra",
        "TRACE",
        "TRACE TAIL",
        "TRACE TAIL x",
    ] {
        assert!(client.request(bad).is_err(), "{bad:?} must be an ERR line");
    }
    // The same connection still serves well-formed requests.
    assert!(client
        .metrics()
        .expect("scrape")
        .contains("rept_ingest_edges_total"));
    assert_eq!(client.trace_tail(4).expect("tail"), Vec::<String>::new());

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn scraping_never_blocks_ingest() {
    let root = unique_root("concurrent");
    let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(19)).with_snapshot_every(4);
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(root.clone()),
        "127.0.0.1:0",
        3,
    )
    .expect("bind");
    let addr = server.local_addr();

    // A scraper hammers METRICS * from its own connection while the
    // main thread drives ingest; both must make progress to completion.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let scraper = {
        let stop = Arc::clone(&stop);
        let scrapes = Arc::clone(&scrapes);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("scraper connect");
            while !stop.load(Ordering::Relaxed) {
                let text = client.metrics_all().expect("scrape");
                assert!(text.contains("rept_ingest_edges_total"));
                scrapes.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    let mut client = Client::connect(addr).expect("ingest connect");
    let mut sent = 0u64;
    for i in 0..200u32 {
        let batch: Vec<Edge> = (0..8).filter_map(|j| Edge::try_new(i, i + j + 1)).collect();
        sent += client.ingest(&batch).expect("ingest") as u64;
    }
    client.flush().expect("flush");
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper thread");

    let text = client.metrics().expect("final scrape");
    assert_eq!(
        sample(&text, "rept_ingest_edges_total", "default"),
        Some(sent),
        "every queued edge must be applied despite concurrent scraping"
    );
    assert!(
        scrapes.load(Ordering::Relaxed) > 0,
        "the scraper must have completed at least one scrape"
    );

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording a value set split across two histograms and merging is
    /// exactly equivalent to recording everything into one histogram:
    /// same buckets, count, sum, max, and therefore same quantiles.
    #[test]
    fn histogram_merge_equals_single_recording(
        values in vec(0u64..1 << 40, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);

        let merged = Histogram::new();
        let other = Histogram::new();
        for &v in left {
            merged.record(v);
        }
        for &v in right {
            other.record(v);
        }
        merged.merge_from(&other);

        let single = Histogram::new();
        for &v in &values {
            single.record(v);
        }

        prop_assert_eq!(merged.bucket_counts(), single.bucket_counts());
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.sum(), single.sum());
        prop_assert_eq!(merged.max(), single.max());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }
}
