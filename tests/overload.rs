//! Overload-resilience acceptance suite: per-tenant memory quotas
//! (bounded-memory reservoir shedding, typed `QUOTA` rejections,
//! degrade-to-read-only), co-tenant isolation under pressure, lossless
//! reservoir kill/resume, dead-letter capture + `DLQ REPLAY` over the
//! wire, and the client's retry discipline against a flaky server
//! (`ERR BUSY` retried with backoff, `ERR QUOTA` never retried,
//! transport failures reconnected only when asked).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use rept::core::reservoir::MIN_MEMORY_BUDGET;
use rept::core::ReptConfig;
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::graph::edge::Edge;
use rept::serve::protocol::{self, Scope, TenantOptions};
use rept::serve::{
    Client, ClientConfig, QuotaPolicy, RouterConfig, ServeConfig, ServeCore, Server, TenantRouter,
};

/// Strategy: a raw stream that keeps duplicate edges (only self-loops
/// are dropped) — the reservoir's multiplicity handling must hold up
/// under pressure too.
fn arb_stream_with_dups(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    vec((0..n, 0..n), 256..max_edges).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(u, v)| Edge::try_new(u, v))
            .collect()
    })
}

/// A per-test-case unique scratch directory.
fn unique_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rept-overload-{tag}-{}-{n}", std::process::id()))
}

/// Recursively snapshots every file under `root` — freezing the disk
/// image at "crash time". Twin of the helper in `tests/serve.rs`.
fn freeze_dir(root: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let bytes = std::fs::read(&path).expect("freeze file");
                files.push((path, bytes));
            }
        }
    }
    files
}

/// Restores a frozen directory image, discarding whatever a graceful
/// drop wrote after the freeze.
fn restore_dir(root: &Path, frozen: &[(PathBuf, Vec<u8>)]) {
    std::fs::remove_dir_all(root).ok();
    for (path, bytes) in frozen {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("recreate dir");
        }
        std::fs::write(path, bytes).expect("restore frozen file");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sustained ingest far past the budget (the budget is set to half
    /// the stream's unpressured footprint, i.e. ~2× pressure): a
    /// shedding tenant's stored bytes never exceed the budget at any
    /// observation point, every edge is still consumed, and an
    /// unpressured co-tenant behind the same router answers
    /// bit-identically to a standalone core — pressure on one tenant
    /// leaks into no other.
    #[test]
    fn shed_tenant_stays_in_budget_and_co_tenant_is_bit_identical(
        stream in arb_stream_with_dups(128, 1500),
        m in 2u64..4,
        c in 1u64..8,
        seed in any::<u64>(),
    ) {
        let cfg = ReptConfig::new(m, c).with_seed(seed).with_eta(true);
        // Measure the unpressured footprint, then budget half of it.
        let probe = ServeCore::start(ServeConfig::new(cfg)).expect("probe");
        probe.ingest(stream.clone()).expect("probe ingest");
        probe.flush();
        let full = probe.health().stored_bytes;
        probe.shutdown();
        let budget = (full / 2).max(MIN_MEMORY_BUDGET);

        let router = TenantRouter::start(RouterConfig::new(
            ServeConfig::new(cfg).with_snapshot_every(32),
        ))
        .expect("router");
        router
            .create(
                "pressed",
                &TenantOptions {
                    memory_budget: Some(budget),
                    ..TenantOptions::default()
                },
            )
            .expect("create pressed");
        let oracle =
            ServeCore::start(ServeConfig::new(cfg).with_snapshot_every(32)).expect("oracle");
        let pressed = router.tenant("pressed").expect("pressed");
        for chunk in stream.chunks(37) {
            router.ingest(&Scope::All, chunk.to_vec()).expect("fan-out");
            oracle.ingest(chunk.to_vec()).expect("oracle ingest");
            pressed.flush();
            let h = pressed.health();
            prop_assert!(
                h.stored_bytes <= budget,
                "stored {} B > budget {} B",
                h.stored_bytes,
                budget
            );
        }
        router.flush_all();
        oracle.flush();
        prop_assert_eq!(pressed.position(), stream.len() as u64, "shed never refuses");
        prop_assert!(pressed.snapshot().confidence95.is_none(), "no REPT interval on a reservoir");
        let want = oracle.snapshot();
        let got = router.tenant("default").expect("default").snapshot();
        prop_assert_eq!(
            protocol::format_global(&got),
            protocol::format_global(&want),
            "co-tenant unaffected"
        );
        prop_assert_eq!(&got.locals, &want.locals);
        drop(pressed);
        oracle.shutdown();
        router.shutdown();
    }
}

#[test]
fn reservoir_kill_resume_is_lossless() {
    // A journaled reservoir tenant killed mid-stream resumes with its
    // complete sampler state (reservoir content, multiplicities, RNG) —
    // finishing the stream afterwards is bit-identical to never having
    // been killed.
    let stream = barabasi_albert(&GeneratorConfig::new(600, 6), 13);
    let cfg = ReptConfig::new(3, 5).with_seed(17);
    let budget = 8 * 1024;

    let oracle =
        ServeCore::start(ServeConfig::new(cfg).with_memory_budget(budget)).expect("oracle");
    oracle.ingest(stream.clone()).expect("oracle ingest");
    oracle.flush();

    let dir = unique_root("reservoir-kill");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let serve_cfg = ServeConfig::new(cfg)
        .with_memory_budget(budget)
        .with_checkpoint(dir.join("serve.rpck"), None)
        .with_journal();
    let core = ServeCore::start(serve_cfg.clone()).expect("start");
    let split = 2 * stream.len() / 3;
    for chunk in stream[..split].chunks(55) {
        core.ingest(chunk.to_vec()).expect("acked");
    }
    // Every acked batch is journaled and fsynced: freeze the disk now,
    // then let the graceful drop lose against the frozen image.
    let frozen = freeze_dir(&dir);
    drop(core);
    restore_dir(&dir, &frozen);

    let resumed = ServeCore::start(serve_cfg).expect("resume");
    assert_eq!(
        resumed.position(),
        split as u64,
        "the acked prefix survives the kill losslessly"
    );
    assert!(resumed.health().stored_bytes <= budget);
    for chunk in stream[split..].chunks(77) {
        resumed.ingest(chunk.to_vec()).expect("replay tail");
    }
    resumed.flush();
    let got = resumed.snapshot();
    let want = oracle.snapshot();
    assert_eq!(got.position, want.position);
    assert_eq!(
        got.global, want.global,
        "reservoir state (incl. RNG) restored bit-identically"
    );
    assert_eq!(got.locals, want.locals);
    oracle.shutdown();
    resumed.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quota_rejections_are_typed_dead_lettered_and_replayable() {
    // The wire path end to end: a reject-quota tenant answers `ERR
    // QUOTA`, the refused line lands verbatim in the tenant's
    // dead-letter file, HEALTH reports the pressure, DLQ REPLAY feeds
    // the file back through ingest (and re-captures what still fails),
    // and a degrade-quota tenant latches read-only.
    let root = unique_root("quota-wire");
    let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(5)).with_journal();
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(root.clone()),
        "127.0.0.1:0",
        2,
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    assert!(
        client.tenant_create("bad", "quota=reject").is_err(),
        "quota without a budget is refused"
    );
    client
        .tenant_create(
            "cap",
            &format!("memory_budget={MIN_MEMORY_BUDGET} quota=reject"),
        )
        .expect("create cap");
    client.use_tenant("cap").expect("use cap");

    let stream = barabasi_albert(&GeneratorConfig::new(300, 4), 7);
    let mut quota_err = None;
    for chunk in stream.chunks(16) {
        match client.ingest(chunk) {
            Ok(_) => {}
            Err(e) => {
                quota_err = Some(e);
                break;
            }
        }
    }
    let e = quota_err.expect("a minimum budget must be breached by this stream");
    assert!(e.to_string().starts_with("QUOTA"), "typed rejection: {e}");

    let health = client.health().expect("health");
    assert!(
        health.contains("state=ok"),
        "reject does not degrade: {health}"
    );
    assert!(
        health.contains(&format!("budget={MIN_MEMORY_BUDGET}")),
        "{health}"
    );
    let dlq: u64 = protocol::reply_field(&health, "dlq")
        .expect("dlq field")
        .parse()
        .expect("dlq number");
    assert!(dlq >= 1, "every rejected line is captured: {health}");

    let dlq_file = root.join("cap").join("serve.dlq");
    let text = std::fs::read_to_string(&dlq_file).expect("dlq file on disk");
    assert_eq!(text.lines().count() as u64, dlq);
    let entry = text.lines().next().expect("first entry");
    let (reason, line) = entry.split_once('\t').expect("reason\\tline");
    assert!(reason.starts_with("QUOTA"), "reason recorded: {reason}");
    assert!(line.starts_with("INGEST "), "verbatim line: {line}");

    // Replay: the tenant is still over budget, so every drained line
    // fails again and is re-captured — nothing is silently dropped.
    let (n, failed) = client.dlq_replay().expect("replay");
    assert_eq!(n, dlq, "everything captured was drained");
    assert_eq!(failed, dlq, "still over budget: all re-captured");
    let health = client.health().expect("health after replay");
    let dlq_after: u64 = protocol::reply_field(&health, "dlq")
        .expect("dlq field")
        .parse()
        .expect("dlq number");
    assert_eq!(dlq_after, dlq, "re-captured entries are back in the file");

    // Degrade: the first breach latches the tenant read-only.
    client
        .tenant_create(
            "frail",
            &format!("memory_budget={MIN_MEMORY_BUDGET} quota=degrade"),
        )
        .expect("create frail");
    client.use_tenant("frail").expect("use frail");
    for chunk in stream.chunks(16) {
        if client.ingest(chunk).is_err() {
            break;
        }
    }
    let health = client.health().expect("frail health");
    assert!(health.contains("state=degraded"), "{health}");
    let refused = client.ingest(&stream[..2]).expect_err("read-only now");
    assert!(refused.to_string().starts_with("QUOTA"), "{refused}");

    drop(client);
    server.shutdown_all();
    std::fs::remove_dir_all(&root).ok();
}

/// One scripted action per request, in request order; the last action
/// repeats for any further requests.
#[derive(Clone, Copy)]
enum Act {
    /// Reply with this line.
    Reply(&'static str),
    /// Close the connection without replying (transport failure).
    Hangup,
}

/// A hand-rolled fake server that follows a reply script and counts
/// requests — the flaky harness the client's retry policy is tested
/// against.
struct ScriptedServer {
    addr: std::net::SocketAddr,
    requests: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScriptedServer {
    fn start(script: Vec<Act>) -> Self {
        assert!(!script.is_empty());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let requests = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let requests = Arc::clone(&requests);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok((stream, _)) = listener.accept() else {
                    continue;
                };
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            let i = requests.fetch_add(1, Ordering::SeqCst) as usize;
                            match script[i.min(script.len() - 1)] {
                                Act::Reply(reply) => {
                                    if writer.write_all(reply.as_bytes()).is_err()
                                        || writer.write_all(b"\n").is_err()
                                    {
                                        break;
                                    }
                                }
                                Act::Hangup => break,
                            }
                        }
                    }
                }
            })
        };
        Self {
            addr,
            requests,
            stop,
            handle: Some(handle),
        }
    }

    fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }
}

impl Drop for ScriptedServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the acceptor
        if let Some(h) = self.handle.take() {
            h.join().expect("scripted server thread");
        }
    }
}

/// Fast backoff so the retry tests run in milliseconds.
fn fast_retry() -> ClientConfig {
    ClientConfig::default().with_backoff(Duration::from_millis(1), Duration::from_millis(4))
}

#[test]
fn client_retries_busy_with_backoff_until_the_server_recovers() {
    let server = ScriptedServer::start(vec![
        Act::Reply("ERR BUSY ingest queue full"),
        Act::Reply("ERR BUSY ingest queue full"),
        Act::Reply("ERR BUSY ingest queue full"),
        Act::Reply("OK INGEST 1"),
    ]);
    let mut client =
        Client::connect_with(server.addr, fast_retry().with_busy_retries(8)).expect("connect");
    client.ingest(&[Edge::new(1, 2)]).expect("converges");
    assert_eq!(server.requests(), 4, "three busy replies, then success");
}

#[test]
fn client_gives_up_on_busy_after_the_retry_budget() {
    let server = ScriptedServer::start(vec![Act::Reply("ERR BUSY ingest queue full")]);
    let mut client =
        Client::connect_with(server.addr, fast_retry().with_busy_retries(2)).expect("connect");
    let e = client.ingest(&[Edge::new(1, 2)]).expect_err("budget spent");
    assert!(e.to_string().starts_with("BUSY"), "{e}");
    assert_eq!(server.requests(), 3, "initial attempt + 2 retries");
}

#[test]
fn client_never_retries_quota_rejections() {
    let server = ScriptedServer::start(vec![Act::Reply("ERR QUOTA memory budget reached")]);
    let mut client = Client::connect_with(
        server.addr,
        fast_retry().with_busy_retries(16).with_io_retries(4),
    )
    .expect("connect");
    let e = client
        .ingest(&[Edge::new(1, 2)])
        .expect_err("durable refusal");
    assert!(e.to_string().starts_with("QUOTA"), "{e}");
    assert_eq!(
        server.requests(),
        1,
        "a quota rejection must be attempted exactly once"
    );
}

#[test]
fn client_reconnects_through_transport_failures_only_when_asked() {
    // Default config: no transport retry — at-least-once resends are
    // opt-in.
    let server = ScriptedServer::start(vec![Act::Hangup, Act::Reply("OK INGEST 1")]);
    let mut client = Client::connect_with(server.addr, fast_retry()).expect("connect");
    let e = client.ingest(&[Edge::new(1, 2)]).expect_err("no io retry");
    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "{e}");
    assert_eq!(server.requests(), 1);
    drop(client);

    // Opted in: the client reconnects and resends.
    let server = ScriptedServer::start(vec![Act::Hangup, Act::Reply("OK INGEST 1")]);
    let mut client =
        Client::connect_with(server.addr, fast_retry().with_io_retries(2)).expect("connect");
    client.ingest(&[Edge::new(1, 2)]).expect("reconnected");
    assert_eq!(server.requests(), 2, "one hangup, one success");
}

#[test]
fn busy_surfaces_on_the_wire_from_a_real_overloaded_server() {
    // A real server with a tiny ingest queue and a slow first batch:
    // non-blocking wire ingest must answer ERR BUSY (transient, not
    // dead-lettered) while the queue is full, and the default client
    // must ride it out with backoff.
    let root = unique_root("busy-wire");
    let mut base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(3));
    base.channel_capacity = 1;
    let server = Server::start_router(
        RouterConfig::new(base).with_root_dir(root.clone()),
        "127.0.0.1:0",
        2,
    )
    .expect("bind");

    // Occupy the ingest thread directly with a long batch, then hammer
    // the wire: some requests must see BUSY, yet the retrying client
    // lands every batch.
    let big: Vec<Edge> = (0..200_000).map(|i| Edge::new(i, i + 1)).collect();
    server.core().ingest(big).expect("queued");
    let mut client = Client::connect_with(
        server.local_addr(),
        ClientConfig::default()
            .with_busy_retries(400)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(25)),
    )
    .expect("connect");
    for i in 0..50u32 {
        client
            .ingest(&[Edge::new(i + 1, i + 2)])
            .expect("backoff rides out the full queue");
    }
    client.flush().expect("flush");
    assert_eq!(
        server.core().position(),
        200_000 + 50,
        "every retried batch landed exactly once"
    );
    assert_eq!(server.core().dlq_count(), 0, "BUSY is never dead-lettered");
    drop(client);
    server.shutdown_all();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn quota_policies_parse_and_round_trip_through_manifests() {
    // TENANT CREATE options survive a router restart: a quota'd tenant
    // resumes with the same budget and policy from its manifest.
    let root = unique_root("manifest");
    let base = ServeConfig::new(ReptConfig::new(2, 2).with_seed(11));
    let cfg = RouterConfig::new(base).with_root_dir(root.clone());
    let router = TenantRouter::start(cfg.clone()).expect("start");
    router
        .create(
            "capped",
            &TenantOptions {
                memory_budget: Some(MIN_MEMORY_BUDGET),
                quota: Some(QuotaPolicy::Reject),
                ..TenantOptions::default()
            },
        )
        .expect("create");
    let stream = barabasi_albert(&GeneratorConfig::new(200, 3), 7);
    let capped = router.tenant("capped").expect("capped");
    let mut refused = false;
    for chunk in stream.chunks(16) {
        if capped.ingest(chunk.to_vec()).is_err() {
            refused = true;
            break;
        }
    }
    assert!(refused, "the minimum budget must refuse this stream");
    drop(capped);
    router.shutdown();

    let resumed = TenantRouter::start(cfg).expect("resume");
    let capped = resumed.tenant("capped").expect("resumed tenant");
    let h = capped.health();
    assert_eq!(h.memory_budget, MIN_MEMORY_BUDGET, "budget resumed");
    // Enforcement is re-armed from measurement: the restored adjacency
    // is still at/over budget, so writes are refused again.
    let e = capped
        .ingest(stream[..4].to_vec())
        .expect_err("policy resumed");
    assert!(e.to_string().starts_with("QUOTA"), "{e}");
    drop(capped);
    resumed.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
