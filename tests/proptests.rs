//! Property-based tests over the whole stack (proptest).

use proptest::collection::vec;
use proptest::prelude::*;
use rept::core::{Engine, EtaMode, Rept, ReptConfig};
use rept::exact::static_count::brute_force_count;
use rept::exact::{forward_count, GroundTruth, StreamingExact};
use rept::gen::stream_order;
use rept::graph::csr::CsrGraph;
use rept::graph::edge::Edge;
use rept::graph::stream::dedup_stream;

/// Strategy: a random simple stream on up to `n` nodes.
fn arb_stream(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    vec((0..n, 0..n), 1..max_edges).prop_map(|pairs| {
        let mut b = rept::graph::GraphBuilder::new();
        for (u, v) in pairs {
            b.add(u, v);
        }
        b.build()
    })
}

/// Strategy: a raw stream that KEEPS duplicate edges (only self-loops
/// are dropped) — the engines' duplicate-handling paths only fire on
/// repeated stream edges, which `arb_stream`'s builder dedups away.
fn arb_stream_with_dups(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    vec((0..n, 0..n), 1..max_edges).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(u, v)| Edge::try_new(u, v))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming exact counter agrees with the independent forward
    /// algorithm on τ and every τ_v, for any stream.
    #[test]
    fn streaming_matches_forward(stream in arb_stream(24, 120)) {
        let mut s = StreamingExact::new();
        s.process_stream(stream.iter().copied());
        let csr = CsrGraph::from_edges(&stream);
        let fwd = forward_count(&csr);
        prop_assert_eq!(s.global(), fwd.global);
        for v in 0..csr.node_count() as u32 {
            prop_assert_eq!(s.local(v), fwd.local[v as usize]);
        }
    }

    /// … and the forward algorithm agrees with brute force.
    #[test]
    fn forward_matches_brute_force(stream in arb_stream(16, 60)) {
        let csr = CsrGraph::from_edges(&stream);
        prop_assert_eq!(forward_count(&csr), brute_force_count(&csr));
    }

    /// The η accumulator always satisfies η = Σ_g C(t_g, 2).
    #[test]
    fn eta_identity(stream in arb_stream(20, 100)) {
        let mut s = StreamingExact::new();
        s.process_stream(stream.iter().copied());
        prop_assert_eq!(s.eta(), s.eta_from_identity());
    }

    /// η is invariant under relabeling but NOT under reordering; τ is
    /// invariant under both. (Reordering invariance of τ is the property
    /// actually asserted; η's order-dependence is witnessed elsewhere.)
    #[test]
    fn tau_is_order_invariant(stream in arb_stream(20, 80), seed in any::<u64>()) {
        let reordered = stream_order(stream.clone(), seed);
        let a = GroundTruth::compute(&stream);
        let b = GroundTruth::compute(&reordered);
        prop_assert_eq!(a.tau, b.tau);
        for (v, t) in &a.tau_v {
            prop_assert_eq!(b.local(*v), *t);
        }
    }

    /// A REPT worker that stores everything reproduces the exact counter,
    /// for any stream (worker ≡ Algorithm 2 at p = 1).
    #[test]
    fn worker_at_p1_is_exact(stream in arb_stream(20, 80)) {
        use rept::core::worker::SemiTriangleWorker;
        let mut w = SemiTriangleWorker::new(true, true, EtaMode::StrictNonLast);
        let mut exact = StreamingExact::new();
        for &e in &stream {
            let closed = w.observe(e);
            w.store(e, closed);
            exact.process(e);
        }
        prop_assert_eq!(w.tau(), exact.global());
        prop_assert_eq!(w.eta(), exact.eta());
    }

    /// REPT's sequential and threaded drivers agree for arbitrary
    /// streams and processor layouts.
    #[test]
    fn drivers_agree(
        stream in arb_stream(30, 120),
        m in 2u64..6,
        c in 1u64..14,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let rept = Rept::new(ReptConfig::new(m, c).with_seed(seed));
        let seq = rept.run_sequential(stream.iter().copied());
        let thr = rept.run_threaded(&stream, threads);
        prop_assert_eq!(seq.global, thr.global);
        prop_assert_eq!(seq.locals, thr.locals);
    }

    /// Both fused engines — single-threaded and threaded — are
    /// bit-identical to the per-worker oracle for arbitrary streams and
    /// processor layouts. `m ∈ [2, 6)` × `c ∈ [1, 14)` covers all three
    /// combination paths (`c ≤ m`, `c₂ = 0`, mixed Graybill–Deal), and η
    /// plus locals are force-enabled so every counter the engines
    /// maintain is exercised, not just the ones the layout strictly
    /// needs. Thread counts above the group count take the within-group
    /// split match/apply path.
    #[test]
    fn fused_engines_agree_with_sequential(
        stream in arb_stream(30, 120),
        m in 2u64..6,
        c in 1u64..14,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let rept = Rept::new(
            ReptConfig::new(m, c).with_seed(seed).with_eta(true).with_locals(true),
        );
        let seq = rept.run_sequential(stream.iter().copied());
        for engine in [Engine::FusedHash, Engine::FusedSorted, Engine::FusedHybrid] {
            let fused = rept.run(engine, &stream);
            prop_assert_eq!(seq.global, fused.global);
            prop_assert_eq!(&seq.locals, &fused.locals);
            prop_assert_eq!(seq.eta_hat, fused.eta_hat);
            prop_assert_eq!(
                &seq.diagnostics.per_processor_tau,
                &fused.diagnostics.per_processor_tau
            );
            let thr = rept.run_threaded_with(engine, &stream, threads);
            prop_assert_eq!(seq.global, thr.global);
            prop_assert_eq!(&seq.locals, &thr.locals);
            prop_assert_eq!(seq.eta_hat, thr.eta_hat);
        }
    }

    /// The sorted- and hybrid-adjacency engines stay bit-identical to
    /// both the hash fused engine and the per-worker oracle on streams
    /// that contain **duplicate edges** — the duplicate-store rule
    /// ("first insert wins, duplicates are ignored"), the unowned-cell
    /// drop (`c < m` layouts), and every counter (η, locals,
    /// per-processor τ, stored-edge counts) must agree across all three
    /// combination paths and all drivers, including the within-group
    /// threaded one.
    #[test]
    fn shared_engines_bit_identical_on_duplicate_streams(
        stream in arb_stream_with_dups(20, 100),
        m in 2u64..6,
        c in 1u64..14,
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let rept = Rept::new(
            ReptConfig::new(m, c).with_seed(seed).with_eta(true).with_locals(true),
        );
        let oracle = rept.run_sequential(stream.iter().copied());
        let hash = rept.run(Engine::FusedHash, &stream);
        let sorted = rept.run(Engine::FusedSorted, &stream);
        let hybrid = rept.run(Engine::FusedHybrid, &stream);
        for fused in [&hash, &sorted, &hybrid] {
            prop_assert_eq!(oracle.global, fused.global);
            prop_assert_eq!(&oracle.locals, &fused.locals);
            prop_assert_eq!(oracle.eta_hat, fused.eta_hat);
            prop_assert_eq!(
                &oracle.diagnostics.per_processor_tau,
                &fused.diagnostics.per_processor_tau
            );
            prop_assert_eq!(
                &oracle.diagnostics.stored_edges,
                &fused.diagnostics.stored_edges
            );
        }
        for engine in [Engine::FusedSorted, Engine::FusedHybrid] {
            let thr = rept.run_threaded_with(engine, &stream, threads);
            prop_assert_eq!(oracle.global, thr.global);
            prop_assert_eq!(&oracle.locals, &thr.locals);
            prop_assert_eq!(oracle.eta_hat, thr.eta_hat);
            prop_assert_eq!(
                &oracle.diagnostics.per_processor_tau,
                &thr.diagnostics.per_processor_tau
            );
        }
    }

    /// A hybrid-engine run killed at an arbitrary stream position and
    /// restored from its RPCK checkpoint finishes bit-identical to the
    /// uninterrupted run *and* to the per-worker oracle — the resumed
    /// core rebuilds its sorted-vec/bitmap representation (and every
    /// cell tag) from the stored union edge set alone. Duplicate edges
    /// are kept in the stream so the restore path's duplicate handling
    /// is exercised on both sides of the kill point.
    #[test]
    fn hybrid_kill_resume_is_bit_identical(
        stream in arb_stream_with_dups(20, 100),
        m in 2u64..6,
        c in 1u64..14,
        seed in any::<u64>(),
        cut in 0usize..100,
    ) {
        use rept::core::resume::ResumableRun;
        let cut = cut.min(stream.len());
        let cfg = ReptConfig::new(m, c).with_seed(seed).with_eta(true).with_locals(true);
        let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());

        let mut unbroken = ResumableRun::with_engine(Rept::new(cfg), Engine::FusedHybrid);
        let mut run = ResumableRun::with_engine(Rept::new(cfg), Engine::FusedHybrid);
        for &e in &stream[..cut] {
            unbroken.process(e);
            run.process(e);
        }
        let blob = run.checkpoint_bytes();
        drop(run); // the "kill": everything not in the blob is gone
        let mut resumed = ResumableRun::from_checkpoint_bytes(&blob).unwrap();
        prop_assert_eq!(resumed.position(), cut as u64);
        for &e in &stream[cut..] {
            unbroken.process(e);
            resumed.process(e);
        }
        let a = unbroken.finalize();
        let b = resumed.finalize();
        prop_assert_eq!(a.global, b.global);
        prop_assert_eq!(&a.locals, &b.locals);
        prop_assert_eq!(a.eta_hat, b.eta_hat);
        prop_assert_eq!(oracle.global, b.global);
        prop_assert_eq!(&oracle.locals, &b.locals);
        prop_assert_eq!(oracle.eta_hat, b.eta_hat);
    }

    /// REPT's global estimate is always non-negative and zero on
    /// triangle-free streams.
    #[test]
    fn estimates_are_sane(stream in arb_stream(30, 100), seed in any::<u64>()) {
        let est = Rept::new(ReptConfig::new(3, 5).with_seed(seed))
            .run_sequential(stream.iter().copied());
        prop_assert!(est.global >= 0.0);
        let gt = GroundTruth::compute(&stream);
        if gt.tau == 0 {
            prop_assert_eq!(est.global, 0.0);
        }
        // Locals are non-negative and only present for seen nodes.
        for &l in est.locals.values() {
            prop_assert!(l >= 0.0);
        }
    }

    /// Deduplication is idempotent and order-preserving.
    #[test]
    fn dedup_idempotent(stream in arb_stream(20, 80)) {
        let once = dedup_stream(&stream);
        let twice = dedup_stream(&once);
        prop_assert_eq!(&once, &twice);
        // The fixture streams are already simple, so dedup is identity.
        prop_assert_eq!(once, stream);
    }

    /// CSR construction is stable under permutation of the input edges.
    #[test]
    fn csr_is_order_independent(stream in arb_stream(20, 80), seed in any::<u64>()) {
        let shuffled = stream_order(stream.clone(), seed);
        let a = CsrGraph::from_edges(&stream);
        let b = CsrGraph::from_edges(&shuffled);
        prop_assert_eq!(a, b);
    }

    /// The binary I/O format round-trips arbitrary simple streams.
    #[test]
    fn binary_io_roundtrip(stream in arb_stream(40, 100)) {
        let mut buf = Vec::new();
        rept::graph::io::write_binary(&mut buf, &stream).unwrap();
        let back = rept::graph::io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(back, stream);
    }

    /// The partition hash distributes any edge set across cells with no
    /// empty cell for reasonably large inputs (sanity floor — uniformity
    /// is tested statistically in rept-hash).
    #[test]
    fn partition_covers_cells(seed in any::<u64>()) {
        use rept::hash::{EdgeHashFamily, PartitionHasher};
        let ph = PartitionHasher::new(EdgeHashFamily::new(seed).member(0), 4);
        let mut hit = [false; 4];
        for i in 0..400u64 {
            hit[ph.cell(i, i + 1) as usize] = true;
        }
        prop_assert!(hit.iter().all(|&h| h));
    }
}
