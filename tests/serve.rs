//! Integration tests of the serving subsystem: kill/resume
//! bit-identicality under the serve driver (proptest, all engines,
//! duplicate-edge streams) and the TCP front-end end to end.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use rept::core::{Engine, Rept, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::graph::edge::Edge;
use rept::serve::{Client, ServeConfig, ServeCore, Server};

/// Strategy: a raw stream that KEEPS duplicate edges (only self-loops
/// are dropped) — duplicate handling must survive checkpoint/resume.
fn arb_stream_with_dups(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    vec((0..n, 0..n), 1..max_edges).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(u, v)| Edge::try_new(u, v))
            .collect()
    })
}

/// A per-test-case unique checkpoint path.
fn unique_ckpt(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rept-serve-test-{tag}-{}-{n}.rpck",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill-and-resume at an arbitrary batch boundary under the serve
    /// driver is bit-identical to an uninterrupted run, across all
    /// three engines and duplicate-edge streams. The kill is simulated
    /// faithfully: the checkpoint file is frozen at its mid-stream
    /// state, edges ingested after it are *lost* with the process, and
    /// the restarted producer replays from the resumed position.
    #[test]
    fn serve_kill_resume_is_bit_identical(
        stream in arb_stream_with_dups(24, 120),
        m in 2u64..6,
        c in 1u64..14,
        seed in any::<u64>(),
        split_sel in any::<u64>(),
        batch_sel in any::<u64>(),
    ) {
        let cfg = ReptConfig::new(m, c).with_seed(seed).with_eta(true);
        let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());
        let batch = 1 + (batch_sel % 37) as usize;
        let split = (split_sel as usize) % (stream.len() + 1);

        for engine in Engine::all() {
            let path = unique_ckpt(engine.name());
            let serve_cfg = ServeConfig::new(cfg)
                .with_engine(engine)
                .with_checkpoint(path.clone(), None)
                .with_snapshot_every(64);

            let core = ServeCore::start(serve_cfg.clone()).expect("start");
            for chunk in stream[..split].chunks(batch) {
                core.ingest(chunk.to_vec());
            }
            let pos = core.checkpoint().expect("checkpoint");
            prop_assert_eq!(pos, split as u64);
            // Edges arriving between the checkpoint and the crash are
            // lost with the process.
            for chunk in stream[split..].chunks(batch * 2) {
                core.ingest(chunk.to_vec());
            }
            let frozen = std::fs::read(&path).expect("checkpoint on disk");
            drop(core); // "crash" (drop would otherwise also checkpoint)
            std::fs::write(&path, &frozen).expect("restore crash-time file");

            let resumed = ServeCore::start(serve_cfg).expect("resume");
            let replay_from = resumed.position() as usize;
            prop_assert_eq!(replay_from, split, "replay point = checkpoint position");
            for chunk in stream[replay_from..].chunks(batch) {
                resumed.ingest(chunk.to_vec());
            }
            let end = resumed.flush();
            prop_assert_eq!(end, stream.len() as u64);
            let snap = resumed.snapshot();
            prop_assert_eq!(snap.global, oracle.global, "{}", engine.name());
            prop_assert_eq!(snap.eta_hat, oracle.eta_hat);
            prop_assert_eq!(&snap.locals, &oracle.locals);
            let final_est = resumed.shutdown();
            prop_assert_eq!(final_est.global, oracle.global);
            prop_assert_eq!(
                &final_est.diagnostics.per_processor_tau,
                &oracle.diagnostics.per_processor_tau
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn tcp_server_end_to_end() {
    let stream = barabasi_albert(&GeneratorConfig::new(500, 7), 4);
    let cfg = ReptConfig::new(4, 6).with_seed(11).with_eta(true);
    let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());

    let serve_cfg = ServeConfig::new(cfg)
        .with_snapshot_every(256)
        .with_top_k(10);
    let server = Server::start(serve_cfg, "127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.ingest(&stream).expect("ingest"), stream.len());
    let pos = client.flush().expect("flush");
    assert_eq!(pos, stream.len() as u64);

    // Global estimate crosses the wire bit-identically.
    let global = client.query_global().expect("query global");
    assert_eq!(global.position, stream.len() as u64);
    assert_eq!(global.tau, oracle.global);
    let (lo, hi) = global.ci95.expect("η tracked ⇒ interval");
    assert!(lo <= global.tau && global.tau <= hi);

    // Local estimates and the top-k index agree with the oracle.
    let top = client.top_k(5).expect("top-k");
    assert!(!top.is_empty());
    for pair in top.windows(2) {
        assert!(pair[0].1 >= pair[1].1, "descending: {top:?}");
    }
    let (best_node, best_tau) = top[0];
    assert_eq!(best_tau, oracle.local(best_node));
    assert_eq!(
        client.query_local(best_node).expect("query local"),
        oracle.local(best_node)
    );
    assert_eq!(client.query_local(4_000_000).expect("unseen node"), 0.0);

    // Stats carry the layout.
    let stats = client.stats().expect("stats");
    assert!(stats.contains("engine=fused-sorted"), "{stats}");
    assert!(stats.contains("checkpoints=0"), "{stats}");
    assert!(stats.contains("m=4"), "{stats}");
    assert!(stats.contains("c=6"), "{stats}");

    // Protocol errors are ERR replies, and the connection survives them
    // — including a malformed shutdown-like line, which must neither
    // stop the server nor close the connection.
    assert!(client.request("BOGUS").is_err());
    assert!(client.request("INGEST 5 5").is_err(), "self-loop");
    assert!(client.request("SHUTDOWN now").is_err(), "trailing token");
    assert!(
        client.checkpoint().is_err(),
        "no checkpoint path configured"
    );
    assert_eq!(client.flush().expect("still alive"), stream.len() as u64);

    // A second concurrent client reads the same snapshot.
    let mut other = Client::connect(addr).expect("second client");
    assert_eq!(
        other.query_global().expect("concurrent query").tau,
        oracle.global
    );

    drop(client);
    drop(other);
    let final_est = server.shutdown();
    assert_eq!(final_est.global, oracle.global);
    assert_eq!(final_est.locals, oracle.locals);
}

#[test]
fn queries_proceed_while_ingest_is_running() {
    // Snapshot isolation under concurrency: a reader hammering the
    // query path while a writer streams edges always sees a consistent
    // snapshot with monotone positions, and ingestion finishes
    // unimpeded.
    let stream = barabasi_albert(&GeneratorConfig::new(800, 3), 4);
    let cfg = ReptConfig::new(4, 4).with_seed(3);
    let serve_cfg = ServeConfig::new(cfg).with_snapshot_every(64);
    let core = ServeCore::start(serve_cfg).expect("start");

    std::thread::scope(|scope| {
        let core = &core;
        let writer = scope.spawn(move || {
            for chunk in stream.chunks(50) {
                core.ingest(chunk.to_vec());
            }
            core.flush()
        });
        let reader = scope.spawn(move || {
            let mut last_pos = 0;
            let mut last_seq = 0;
            for _ in 0..500 {
                let snap = core.snapshot();
                assert!(snap.position >= last_pos, "positions are monotone");
                assert!(snap.seq >= last_seq, "sequence numbers are monotone");
                assert!(snap.global >= 0.0);
                last_pos = snap.position;
                last_seq = snap.seq;
            }
        });
        let end = writer.join().expect("writer");
        reader.join().expect("reader");
        assert_eq!(end, core.flush());
    });
    core.shutdown();
}

#[test]
fn dropping_a_server_stops_everything_and_checkpoints() {
    // A plain drop (error path, early return) must not leak acceptor
    // threads or the ingest thread — and the core's drop still writes
    // the final checkpoint.
    let path = unique_ckpt("drop");
    std::fs::remove_file(&path).ok();
    let cfg = ReptConfig::new(3, 3).with_seed(2);
    let serve_cfg = ServeConfig::new(cfg).with_checkpoint(path.clone(), None);
    let server = Server::start(serve_cfg, "127.0.0.1:0", 2).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .ingest(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
        .expect("ingest");
    client.flush().expect("flush");
    drop(client);
    drop(server); // must return promptly, not hang in accept()
    assert!(path.exists(), "final checkpoint written on drop");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tcp_shutdown_command_stops_the_acceptors() {
    let cfg = ReptConfig::new(3, 3).with_seed(1);
    let server = Server::start(ServeConfig::new(cfg), "127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .ingest(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
        .expect("ingest");
    client.shutdown_server().expect("shutdown command");
    drop(client);
    let est = server.shutdown();
    assert!(est.global >= 0.0);
}
