//! Integration tests of the serving subsystem: kill/resume
//! bit-identicality under the serve driver (proptest, all engines,
//! duplicate-edge streams), multi-tenant routing (every tenant
//! bit-identical to a standalone core, across router-wide kill/resume),
//! v1 protocol compatibility against the router, and the TCP front-end
//! end to end.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use rept::core::{Engine, Rept, ReptConfig};
use rept::gen::{barabasi_albert, GeneratorConfig};
use rept::graph::edge::Edge;
use rept::serve::protocol::{self, Scope, TenantOptions};
use rept::serve::{Client, RouterConfig, ServeConfig, ServeCore, Server, TenantRouter};

/// Strategy: a raw stream that KEEPS duplicate edges (only self-loops
/// are dropped) — duplicate handling must survive checkpoint/resume.
fn arb_stream_with_dups(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    vec((0..n, 0..n), 1..max_edges).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(u, v)| Edge::try_new(u, v))
            .collect()
    })
}

/// A per-test-case unique checkpoint path.
fn unique_ckpt(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rept-serve-test-{tag}-{}-{n}.rpck",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kill-and-resume at an arbitrary batch boundary under the serve
    /// driver is bit-identical to an uninterrupted run, across all
    /// three engines and duplicate-edge streams. The kill is simulated
    /// faithfully: the checkpoint file is frozen at its mid-stream
    /// state, edges ingested after it are *lost* with the process, and
    /// the restarted producer replays from the resumed position.
    #[test]
    fn serve_kill_resume_is_bit_identical(
        stream in arb_stream_with_dups(24, 120),
        m in 2u64..6,
        c in 1u64..14,
        seed in any::<u64>(),
        split_sel in any::<u64>(),
        batch_sel in any::<u64>(),
    ) {
        let cfg = ReptConfig::new(m, c).with_seed(seed).with_eta(true);
        let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());
        let batch = 1 + (batch_sel % 37) as usize;
        let split = (split_sel as usize) % (stream.len() + 1);

        for engine in Engine::all() {
            let path = unique_ckpt(engine.name());
            let serve_cfg = ServeConfig::new(cfg)
                .with_engine(engine)
                .with_checkpoint(path.clone(), None)
                .with_snapshot_every(64);

            let core = ServeCore::start(serve_cfg.clone()).expect("start");
            for chunk in stream[..split].chunks(batch) {
                core.ingest(chunk.to_vec()).expect("ingest");
            }
            let pos = core.checkpoint().expect("checkpoint");
            prop_assert_eq!(pos, split as u64);
            // Edges arriving between the checkpoint and the crash are
            // lost with the process.
            for chunk in stream[split..].chunks(batch * 2) {
                core.ingest(chunk.to_vec()).expect("ingest");
            }
            let frozen = std::fs::read(&path).expect("checkpoint on disk");
            drop(core); // "crash" (drop would otherwise also checkpoint)
            std::fs::write(&path, &frozen).expect("restore crash-time file");

            let resumed = ServeCore::start(serve_cfg).expect("resume");
            let replay_from = resumed.position() as usize;
            prop_assert_eq!(replay_from, split, "replay point = checkpoint position");
            for chunk in stream[replay_from..].chunks(batch) {
                resumed.ingest(chunk.to_vec()).expect("ingest");
            }
            let end = resumed.flush();
            prop_assert_eq!(end, stream.len() as u64);
            let snap = resumed.snapshot();
            prop_assert_eq!(snap.global, oracle.global, "{}", engine.name());
            prop_assert_eq!(snap.eta_hat, oracle.eta_hat);
            prop_assert_eq!(&snap.locals, &oracle.locals);
            let final_est = resumed.shutdown();
            prop_assert_eq!(final_est.global, oracle.global);
            prop_assert_eq!(
                &final_est.diagnostics.per_processor_tau,
                &oracle.diagnostics.per_processor_tau
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// A per-test-case unique tenant-root directory.
fn unique_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rept-serve-root-{tag}-{}-{n}", std::process::id()))
}

/// Recursively snapshots every file under `root` — the multi-tenant
/// analogue of freezing one checkpoint file to emulate a crash. Twin
/// of the helper in `examples/multi_tenant.rs`; keep their crash
/// semantics in sync.
fn freeze_dir(root: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let bytes = std::fs::read(&path).expect("freeze file");
                files.push((path, bytes));
            }
        }
    }
    files
}

/// Restores a frozen directory image, discarding whatever was written
/// after the freeze.
fn restore_dir(root: &Path, frozen: &[(PathBuf, Vec<u8>)]) {
    std::fs::remove_dir_all(root).ok();
    for (path, bytes) in frozen {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("recreate tenant dir");
        }
        std::fs::write(path, bytes).expect("restore frozen file");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Multi-tenant routing is pure fan-out: for random streams and
    /// 1–4 tenants (mixed engines, one interval-derived), every
    /// tenant's `QUERY GLOBAL` / `QUERY LOCAL` / `TOPK` answers — the
    /// actual protocol reply lines — are bit-identical to a standalone
    /// [`ServeCore`] under the same resolved config fed the same
    /// edges. Both before and after a router-wide kill: the entire
    /// tenant root is frozen at its mid-stream state, edges ingested
    /// after the all-tenant checkpoint are lost with the process, and
    /// the restarted router resumes every tenant from its own
    /// checkpoint directory.
    #[test]
    fn tenants_are_bit_identical_to_standalone_cores(
        stream in arb_stream_with_dups(20, 90),
        m in 2u64..5,
        c in 1u64..10,
        seed in any::<u64>(),
        extra in 0usize..4,
        split_sel in any::<u64>(),
    ) {
        let root = unique_root("tenants");
        let base = ReptConfig::new(m, c).with_seed(seed).with_eta(true);
        let cfg = RouterConfig::new(
            ServeConfig::new(base).with_snapshot_every(32).with_top_k(8),
        )
        .with_root_dir(root.clone());
        let split = (split_sel as usize) % (stream.len() + 1);

        // Tenant specs: `default` plus up to three extras — a
        // per-worker tenant on another seed, an interval-derived
        // tenant, and a fused-hash tenant on a different layout.
        let extras: Vec<(&str, TenantOptions)> = [
            ("pw", TenantOptions {
                engine: Some(Engine::PerWorker),
                seed: Some(seed ^ 0x9e37_79b9),
                ..TenantOptions::default()
            }),
            ("win2", TenantOptions { interval: Some(2), ..TenantOptions::default() }),
            ("hash", TenantOptions {
                engine: Some(Engine::FusedHash),
                c: Some(c + 1),
                ..TenantOptions::default()
            }),
        ]
        .into_iter()
        .take(extra)
        .collect();

        let router = TenantRouter::start(cfg.clone()).expect("start router");
        for (name, opts) in &extras {
            router.create(name, opts).expect("create tenant");
        }
        // Standalone oracles: one ServeCore per tenant under the
        // identical resolved config, fed the identical edges.
        let mut oracles: Vec<(String, ServeCore)> =
            vec![(protocol::DEFAULT_TENANT.to_string(), {
                ServeCore::start(ServeConfig::new(base).with_snapshot_every(32).with_top_k(8))
                    .expect("standalone default")
            })];
        for (name, opts) in &extras {
            let (rept, engine) = router.resolve_options(opts).expect("resolve");
            let standalone = ServeCore::start(
                ServeConfig::new(rept)
                    .with_engine(engine)
                    .with_snapshot_every(32)
                    .with_top_k(8),
            )
            .expect("standalone tenant");
            oracles.push((name.to_string(), standalone));
        }

        // Phase 1: fan out the first part, checkpoint all, then lose
        // post-checkpoint edges with the "crash".
        for chunk in stream[..split].chunks(29) {
            router.ingest(&Scope::All, chunk.to_vec()).expect("ingest");
        }
        let ckpts = router.checkpoint_all().expect("checkpoint all");
        prop_assert!(ckpts.iter().all(|(_, p)| *p == split as u64));
        for chunk in stream[split..].chunks(41) {
            router.ingest(&Scope::All, chunk.to_vec()).expect("ingest");
        }
        let frozen = freeze_dir(&root);
        drop(router.shutdown()); // the real kill: frozen state wins below
        restore_dir(&root, &frozen);

        // Phase 2: resume the whole router, replay from the
        // checkpointed position, compare every tenant's answers.
        let resumed = TenantRouter::start(cfg).expect("resume router");
        prop_assert_eq!(resumed.len(), 1 + extras.len(), "all tenants resumed");
        for (name, _) in &oracles {
            let core = resumed.tenant(name).expect("tenant resumed");
            prop_assert_eq!(core.position(), split as u64, "{}", name);
        }
        for chunk in stream[split..].chunks(17) {
            resumed.ingest(&Scope::All, chunk.to_vec()).expect("replay");
        }
        resumed.flush_all();
        for (name, standalone) in &oracles {
            standalone.ingest(stream.clone()).expect("ingest");
            standalone.flush();
            let want = standalone.snapshot();
            let got = resumed.tenant(name).expect("tenant").snapshot();
            // The wire answers themselves: QUERY GLOBAL, TOPK, and a
            // QUERY LOCAL per top node.
            prop_assert_eq!(
                protocol::format_global(&got),
                protocol::format_global(&want),
                "{}", name
            );
            prop_assert_eq!(
                protocol::format_top_k(&got, 8),
                protocol::format_top_k(&want, 8),
                "{}", name
            );
            for &(v, _) in want.top_k.iter() {
                prop_assert_eq!(
                    protocol::format_local(&got, v),
                    protocol::format_local(&want, v)
                );
            }
            prop_assert_eq!(&got.locals, &want.locals, "{}", name);
            prop_assert_eq!(got.eta_hat, want.eta_hat);
        }
        resumed.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn v1_clients_work_unchanged_against_the_router_default_tenant() {
    // A v1 client — no USE, no TENANT — must behave exactly as it did
    // against the single-core server, even while other tenants exist
    // and receive different data.
    let stream = barabasi_albert(&GeneratorConfig::new(400, 9), 4);
    let base = ReptConfig::new(3, 5).with_seed(21).with_eta(true);
    let oracle = Rept::new(base).run_sequential(stream.iter().copied());

    let server = Server::start_router(
        RouterConfig::new(
            ServeConfig::new(base)
                .with_snapshot_every(128)
                .with_top_k(10),
        ),
        "127.0.0.1:0",
        2,
    )
    .expect("bind");
    let addr = server.local_addr();

    // A v2 sidecar creates a tenant and feeds it *different* edges —
    // none of which the v1 client may observe.
    let mut admin = Client::connect(addr).expect("admin connect");
    admin.tenant_create("other", "seed=5").expect("create");
    admin
        .ingest_to("other", &stream[..200])
        .expect("scoped ingest");
    admin.use_tenant("other").expect("use");
    admin.flush().expect("flush other");

    // The v1 session: only v1 verbs, implicit default tenant.
    let mut v1 = Client::connect(addr).expect("v1 connect");
    assert_eq!(v1.ingest(&stream).expect("ingest"), stream.len());
    assert_eq!(v1.flush().expect("flush"), stream.len() as u64);
    let global = v1.query_global().expect("query global");
    assert_eq!(global.position, stream.len() as u64);
    assert_eq!(global.tau, oracle.global);
    let top = v1.top_k(5).expect("top-k");
    let (best_node, best_tau) = top[0];
    assert_eq!(best_tau, oracle.local(best_node));
    assert_eq!(
        v1.query_local(best_node).expect("query local"),
        oracle.local(best_node)
    );
    let stats = v1.stats().expect("stats");
    assert!(
        stats.contains(&format!("position={}", stream.len())),
        "{stats}"
    );
    assert!(v1.request("SHUTDOWN now").is_err(), "v1 grammar intact");

    drop(v1);
    drop(admin);
    let final_est = server.shutdown(); // the default tenant's estimate
    assert_eq!(final_est.global, oracle.global);
    assert_eq!(final_est.locals, oracle.locals);
}

#[test]
fn tcp_tenant_commands_round_trip() {
    // The v2 surface over a real socket: create/list/use/drop, scoped
    // fan-out ingest, cross-tenant STATS and merged TOPK.
    let stream = barabasi_albert(&GeneratorConfig::new(300, 5), 4);
    let base = ReptConfig::new(3, 3).with_seed(8);
    let server = Server::start_router(
        RouterConfig::new(ServeConfig::new(base).with_snapshot_every(64).with_top_k(5)),
        "127.0.0.1:0",
        2,
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.tenant_create("alpha", "").expect("create alpha");
    client
        .tenant_create_interval("win0", 0)
        .expect("create win0");
    assert!(client.tenant_create("alpha", "").is_err(), "duplicate");
    assert!(
        client.tenant_create("bad", "seed=1 interval=2").is_err(),
        "exclusive options"
    );

    // Fan out to everyone, then a named subset.
    client.ingest_to("*", &stream[..150]).expect("fan-out");
    client
        .ingest_to("alpha,win0", &stream[150..])
        .expect("subset");
    assert!(client.ingest_to("ghost", &stream[..2]).is_err());

    // Per-tenant positions via LIST (flush each through USE first).
    for t in ["default", "alpha", "win0"] {
        client.use_tenant(t).expect("use");
        client.flush().expect("flush");
    }
    let tenants = client.tenant_list().expect("list");
    let pos: Vec<(String, u64)> = tenants.clone();
    assert_eq!(
        pos,
        vec![
            ("alpha".to_string(), stream.len() as u64),
            ("default".to_string(), 150),
            ("win0".to_string(), stream.len() as u64),
        ]
    );

    // USE routes the v1 verbs to the selected tenant.
    client.use_tenant("alpha").expect("use alpha");
    let alpha_cfg = base; // alpha inherited the base config
    let alpha_oracle = Rept::new(alpha_cfg).run_sequential(stream.iter().copied());
    assert_eq!(
        client.query_global().expect("global").tau,
        alpha_oracle.global
    );
    assert!(client.use_tenant("ghost").is_err(), "unknown tenant");

    // Cross-tenant aggregation.
    let stats =
        protocol::reply_field(&client.stats_all().expect("stats *"), "tenants").map(str::to_owned);
    assert_eq!(stats.as_deref(), Some("3"));
    let merged = client.top_k_all(10).expect("topk *");
    for pair in merged.windows(2) {
        assert!(pair[0].2 >= pair[1].2, "descending: {merged:?}");
    }
    assert!(
        merged
            .iter()
            .all(|(t, _, _)| ["default", "alpha", "win0"].contains(&t.as_str())),
        "{merged:?}"
    );

    // DROP: tenant disappears; the connection using it gets ERR.
    client.use_tenant("win0").expect("use win0");
    client.tenant_drop("win0").expect("drop win0");
    assert!(client.query_global().is_err(), "dropped tenant is gone");
    assert!(client.tenant_drop("default").is_err(), "default protected");
    client.use_tenant("default").expect("back to default");
    assert_eq!(client.query_global().expect("global").position, 150);

    // A tenant literally named `n` must not be swallowed by the
    // `n=<count>` reply header (positional parsing regression test).
    client.tenant_create("n", "").expect("create n");
    let with_n = client.tenant_list().expect("list with n");
    assert!(
        with_n.iter().any(|(name, pos)| name == "n" && *pos == 0),
        "{with_n:?}"
    );

    drop(client);
    server.shutdown_all();
}

#[test]
fn tcp_server_end_to_end() {
    let stream = barabasi_albert(&GeneratorConfig::new(500, 7), 4);
    let cfg = ReptConfig::new(4, 6).with_seed(11).with_eta(true);
    let oracle = Rept::new(cfg).run_sequential(stream.iter().copied());

    let serve_cfg = ServeConfig::new(cfg)
        .with_snapshot_every(256)
        .with_top_k(10);
    let server = Server::start(serve_cfg, "127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.ingest(&stream).expect("ingest"), stream.len());
    let pos = client.flush().expect("flush");
    assert_eq!(pos, stream.len() as u64);

    // Global estimate crosses the wire bit-identically.
    let global = client.query_global().expect("query global");
    assert_eq!(global.position, stream.len() as u64);
    assert_eq!(global.tau, oracle.global);
    let (lo, hi) = global.ci95.expect("η tracked ⇒ interval");
    assert!(lo <= global.tau && global.tau <= hi);

    // Local estimates and the top-k index agree with the oracle.
    let top = client.top_k(5).expect("top-k");
    assert!(!top.is_empty());
    for pair in top.windows(2) {
        assert!(pair[0].1 >= pair[1].1, "descending: {top:?}");
    }
    let (best_node, best_tau) = top[0];
    assert_eq!(best_tau, oracle.local(best_node));
    assert_eq!(
        client.query_local(best_node).expect("query local"),
        oracle.local(best_node)
    );
    assert_eq!(client.query_local(4_000_000).expect("unseen node"), 0.0);

    // Stats carry the layout.
    let stats = client.stats().expect("stats");
    assert!(stats.contains("engine=fused-sorted"), "{stats}");
    assert!(stats.contains("checkpoints=0"), "{stats}");
    assert!(stats.contains("m=4"), "{stats}");
    assert!(stats.contains("c=6"), "{stats}");

    // Protocol errors are ERR replies, and the connection survives them
    // — including a malformed shutdown-like line, which must neither
    // stop the server nor close the connection.
    assert!(client.request("BOGUS").is_err());
    assert!(client.request("INGEST 5 5").is_err(), "self-loop");
    assert!(client.request("SHUTDOWN now").is_err(), "trailing token");
    assert!(
        client.checkpoint().is_err(),
        "no checkpoint path configured"
    );
    assert_eq!(client.flush().expect("still alive"), stream.len() as u64);

    // A second concurrent client reads the same snapshot.
    let mut other = Client::connect(addr).expect("second client");
    assert_eq!(
        other.query_global().expect("concurrent query").tau,
        oracle.global
    );

    drop(client);
    drop(other);
    let final_est = server.shutdown();
    assert_eq!(final_est.global, oracle.global);
    assert_eq!(final_est.locals, oracle.locals);
}

#[test]
fn queries_proceed_while_ingest_is_running() {
    // Snapshot isolation under concurrency: a reader hammering the
    // query path while a writer streams edges always sees a consistent
    // snapshot with monotone positions, and ingestion finishes
    // unimpeded.
    let stream = barabasi_albert(&GeneratorConfig::new(800, 3), 4);
    let cfg = ReptConfig::new(4, 4).with_seed(3);
    let serve_cfg = ServeConfig::new(cfg).with_snapshot_every(64);
    let core = ServeCore::start(serve_cfg).expect("start");

    std::thread::scope(|scope| {
        let core = &core;
        let writer = scope.spawn(move || {
            for chunk in stream.chunks(50) {
                core.ingest(chunk.to_vec()).expect("ingest");
            }
            core.flush()
        });
        let reader = scope.spawn(move || {
            let mut last_pos = 0;
            let mut last_seq = 0;
            for _ in 0..500 {
                let snap = core.snapshot();
                assert!(snap.position >= last_pos, "positions are monotone");
                assert!(snap.seq >= last_seq, "sequence numbers are monotone");
                assert!(snap.global >= 0.0);
                last_pos = snap.position;
                last_seq = snap.seq;
            }
        });
        let end = writer.join().expect("writer");
        reader.join().expect("reader");
        assert_eq!(end, core.flush());
    });
    core.shutdown();
}

#[test]
fn dropping_a_server_stops_everything_and_checkpoints() {
    // A plain drop (error path, early return) must not leak acceptor
    // threads or the ingest thread — and the core's drop still writes
    // the final checkpoint.
    let path = unique_ckpt("drop");
    std::fs::remove_file(&path).ok();
    let cfg = ReptConfig::new(3, 3).with_seed(2);
    let serve_cfg = ServeConfig::new(cfg).with_checkpoint(path.clone(), None);
    let server = Server::start(serve_cfg, "127.0.0.1:0", 2).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .ingest(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
        .expect("ingest");
    client.flush().expect("flush");
    drop(client);
    drop(server); // must return promptly, not hang in accept()
    assert!(path.exists(), "final checkpoint written on drop");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tcp_shutdown_command_stops_the_acceptors() {
    let cfg = ReptConfig::new(3, 3).with_seed(1);
    let server = Server::start(ServeConfig::new(cfg), "127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .ingest(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)])
        .expect("ingest");
    client.shutdown_server().expect("shutdown command");
    drop(client);
    let est = server.shutdown();
    assert!(est.global >= 0.0);
}
