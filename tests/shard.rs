//! Shard-equivalence suite: the `rept-shard` coordinator over sliced
//! shard cores is **bit-identical** to a standalone `ServeCore` — the
//! same query reply lines, byte for byte — across all engines, shard
//! counts {1, 2, 3, 5}, duplicate-edge streams, and through
//! coordinator-orchestrated checkpoints, whole-cluster kills and
//! all-shard journal-replay resume. Plus the degradation contract: a
//! killed shard turns `HEALTH` into `state=degraded shards=<k>/<n>`
//! while queries keep answering from the survivors, and a revived
//! shard replays the buffered tail and restores bit-identicality.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use rept::core::{Engine, GroupSlice, ReptConfig};
use rept::graph::edge::Edge;
use rept::serve::protocol;
use rept::serve::{LiveStats, ServeConfig, ServeCore, Server, Snapshot};
use rept::shard::{
    format_cluster_health, CoordinatorConfig, CoordinatorServer, ShardCoordinator, ShardLink,
};

/// Every shard count the equivalence contract is proven for (1 is the
/// degenerate cluster a client must also not be able to distinguish).
const SHARD_COUNTS: [u32; 4] = [1, 2, 3, 5];

/// Strategy: a raw stream that KEEPS duplicate edges (only self-loops
/// are dropped) — duplicate handling must shard exactly too.
fn arb_stream_with_dups(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<Edge>> {
    vec((0..n, 0..n), 1..max_edges).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(u, v)| Edge::try_new(u, v))
            .collect()
    })
}

/// A per-test-case unique cluster root directory.
fn unique_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rept-shard-{tag}-{}-{n}", std::process::id()))
}

/// Recursively snapshots every file under `root` — twin of the helper
/// in `tests/fault.rs`; keep their crash semantics in sync. (Valid for
/// acked writes because journaled ingest fsyncs before the ack.)
fn freeze_dir(root: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let bytes = std::fs::read(&path).expect("freeze file");
                files.push((path, bytes));
            }
        }
    }
    files
}

/// Restores a frozen directory image, discarding whatever was written
/// after the freeze.
fn restore_dir(root: &Path, frozen: &[(PathBuf, Vec<u8>)]) {
    std::fs::remove_dir_all(root).ok();
    std::fs::create_dir_all(root).expect("recreate root");
    for (path, bytes) in frozen {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("recreate dir");
        }
        std::fs::write(path, bytes).expect("restore frozen file");
    }
}

/// One sliced shard core per shard, round-robin over the groups. With
/// a root, each shard gets its own checkpoint file + journal under it.
fn sliced_cores(
    cfg: ReptConfig,
    engine: Engine,
    shards: u32,
    snapshot_every: u64,
    root: Option<&Path>,
) -> Vec<Arc<ServeCore>> {
    (0..shards)
        .map(|i| {
            let mut sc = ServeConfig::new(cfg)
                .with_engine(engine)
                .with_snapshot_every(snapshot_every)
                .with_group_slice(GroupSlice::new(i, shards));
            if let Some(root) = root {
                sc = sc
                    .with_checkpoint(root.join(format!("shard{i}.rpck")), None)
                    .with_journal();
            }
            Arc::new(ServeCore::start(sc).expect("shard core"))
        })
        .collect()
}

fn coordinator_over(
    cores: &[Arc<ServeCore>],
    cfg: ReptConfig,
    engine: Engine,
    snapshot_every: u64,
) -> ShardCoordinator {
    let links = cores
        .iter()
        .map(|c| ShardLink::local(Arc::clone(c)))
        .collect();
    let ccfg = CoordinatorConfig::new(cfg)
        .with_engine(engine)
        .with_snapshot_every(snapshot_every);
    ShardCoordinator::start(ccfg, links).expect("coordinator")
}

/// The query surface whose reply lines must match byte for byte.
fn query_replies(snap: &Snapshot, nodes: &[u32]) -> Vec<String> {
    let mut out = vec![
        protocol::format_global(snap),
        protocol::format_top_k(snap, 8),
    ];
    for &v in nodes {
        out.push(protocol::format_local(snap, v));
    }
    out
}

/// `STATS` with the *physical* fields stripped: `bytes=` differs
/// because fused shared structures split across shard processes, and
/// the journal/DLQ gauges are per-node state the coordinator does not
/// own. Everything logical (position, seq, checkpoints, engine, m, c,
/// stored_edges, tracked_nodes) must still match byte for byte — with
/// `strip_counters` the seq/checkpoints fields go too (used after a
/// cluster restart, which legitimately resets the coordinator's
/// publication counters).
fn canonical_stats(reply: &str, strip_counters: bool) -> String {
    reply
        .split(' ')
        .filter(|tok| {
            let physical = tok.starts_with("bytes=")
                || tok.starts_with("journal_bytes=")
                || tok.starts_with("journal_segments=")
                || tok.starts_with("replayed=")
                || tok.starts_with("dlq=");
            let counter = tok.starts_with("seq=") || tok.starts_with("checkpoints=");
            !(physical || (strip_counters && counter))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn stats_reply(snap: &Snapshot) -> String {
    let live = LiveStats {
        stored_bytes: 0,
        journal_bytes: 0,
        journal_segments: 0,
        dlq: 0,
    };
    protocol::format_stats(snap, &live)
}

const QUERY_NODES: [u32; 4] = [0, 3, 7, 23];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence: for every engine and shard count, a
    /// cluster fed the same batches as a standalone core produces
    /// byte-identical `QUERY GLOBAL` / `QUERY LOCAL` / `TOPK` replies,
    /// byte-identical canonicalized `STATS` (including the `seq=`
    /// cadence counter — the coordinator replicates the standalone
    /// publication arithmetic), and the same merged raw aggregates.
    #[test]
    fn coordinator_replies_are_byte_identical_to_standalone(
        stream in arb_stream_with_dups(24, 100),
        m in 2u64..4,
        rem_sel in 0u64..4,
        seed in any::<u64>(),
        batch_sel in any::<u64>(),
    ) {
        // ≥ 5 hash groups so every shard count in SHARD_COUNTS has work;
        // rem > 0 adds a remainder group (the c₂ = c mod m layout).
        let c = m * 5 + (rem_sel % m);
        let cfg = ReptConfig::new(m, c)
            .with_seed(seed)
            .with_eta(true)
            .with_locals(true);
        let batch = 1 + (batch_sel % 23) as usize;
        let every = 16u64;

        for engine in Engine::all() {
            let standalone =
                ServeCore::start(ServeConfig::new(cfg).with_engine(engine).with_snapshot_every(every))
                    .expect("standalone");
            for chunk in stream.chunks(batch) {
                standalone.ingest(chunk.to_vec()).expect("ingest");
            }
            standalone.flush();
            let want_snap = standalone.snapshot();
            let want = query_replies(&want_snap, &QUERY_NODES);
            let want_stats = canonical_stats(&stats_reply(&want_snap), false);
            let (want_pos, want_aggs) = standalone.aggregates().expect("aggregates");
            standalone.shutdown();

            for &shards in &SHARD_COUNTS {
                let cores = sliced_cores(cfg, engine, shards, every, None);
                let mut coord = coordinator_over(&cores, cfg, engine, every);
                for chunk in stream.chunks(batch) {
                    coord.ingest(chunk.to_vec()).expect("ingest");
                }
                prop_assert_eq!(coord.flush(), stream.len() as u64);
                let snap = coord.snapshot();
                prop_assert_eq!(
                    &query_replies(&snap, &QUERY_NODES),
                    &want,
                    "engine {} shards {}",
                    engine.name(),
                    shards
                );
                prop_assert_eq!(
                    canonical_stats(&stats_reply(&snap), false),
                    want_stats.clone(),
                    "engine {} shards {}",
                    engine.name(),
                    shards
                );
                // The merged aggregate exchange equals the standalone
                // one field-for-field (bytes excluded: physical layout).
                let (pos, aggs) = coord.aggregates().expect("merged aggregates");
                prop_assert_eq!(pos, want_pos);
                prop_assert_eq!(aggs.len(), want_aggs.len());
                for (got, want) in aggs.iter().zip(&want_aggs) {
                    prop_assert_eq!(got.start, want.start);
                    prop_assert_eq!(&got.tau, &want.tau);
                    prop_assert_eq!(&got.stored, &want.stored);
                    prop_assert_eq!(got.eta_total, want.eta_total);
                    prop_assert_eq!(&got.tau_v, &want.tau_v);
                    prop_assert_eq!(&got.eta_v, &want.eta_v);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Orchestrated durability: checkpoint the whole cluster mid-stream,
    /// keep ingesting, kill **every** shard at once (freeze each shard's
    /// acked disk image, drop the cluster, restore), resume all shards —
    /// journal replay recovers each slice losslessly — and restart the
    /// coordinator over them. The resumed cluster's query replies are
    /// byte-identical to an uninterrupted standalone run.
    #[test]
    fn cluster_kill_and_all_shard_resume_is_bit_identical(
        stream in arb_stream_with_dups(20, 80),
        seed in any::<u64>(),
        ckpt_sel in any::<u64>(),
        batch_sel in any::<u64>(),
    ) {
        let cfg = ReptConfig::new(2, 11) // 5 full groups + remainder = 6
            .with_seed(seed)
            .with_eta(true)
            .with_locals(true);
        let batch = 1 + (batch_sel % 13) as usize;
        let ckpt_at = (ckpt_sel as usize) % (stream.len() + 1);

        for engine in Engine::all() {
            for &shards in &[2u32, 3, 5] {
                let root = unique_root(&format!("kill-{}-{shards}", engine.name()));
                std::fs::remove_dir_all(&root).ok();
                std::fs::create_dir_all(&root).expect("mk root");

                let cores = sliced_cores(cfg, engine, shards, 16, Some(&root));
                let mut coord = coordinator_over(&cores, cfg, engine, 16);
                for chunk in stream[..ckpt_at].chunks(batch) {
                    coord.ingest(chunk.to_vec()).expect("ingest");
                }
                let pos = coord.checkpoint().expect("orchestrated checkpoint");
                prop_assert_eq!(pos, ckpt_at as u64);
                for chunk in stream[ckpt_at..].chunks(batch) {
                    coord.ingest(chunk.to_vec()).expect("ingest");
                }
                // Whole-cluster kill: the shutdown checkpoints the drop
                // would write are part of what the crash destroys.
                let frozen = freeze_dir(&root);
                drop(coord);
                drop(cores);
                restore_dir(&root, &frozen);

                // All-shard resume: per-shard checkpoint + journal tail.
                let cores = sliced_cores(cfg, engine, shards, 16, Some(&root));
                for core in &cores {
                    prop_assert_eq!(
                        core.position(),
                        stream.len() as u64,
                        "journaled slice recovered losslessly ({} shards={shards})",
                        engine.name()
                    );
                }
                let mut coord = coordinator_over(&cores, cfg, engine, 16);
                prop_assert_eq!(coord.flush(), stream.len() as u64);
                let snap = coord.snapshot();

                let standalone = ServeCore::start(
                    ServeConfig::new(cfg).with_engine(engine).with_snapshot_every(16),
                )
                .expect("standalone");
                for chunk in stream.chunks(batch) {
                    standalone.ingest(chunk.to_vec()).expect("ingest");
                }
                standalone.flush();
                let want_snap = standalone.snapshot();
                standalone.shutdown();

                prop_assert_eq!(
                    &query_replies(&snap, &QUERY_NODES),
                    &query_replies(&want_snap, &QUERY_NODES),
                    "engine {} shards {}",
                    engine.name(),
                    shards
                );
                // Position and config survive; the publication counters
                // legitimately restarted with the coordinator.
                prop_assert_eq!(
                    canonical_stats(&stats_reply(&snap), true),
                    canonical_stats(&stats_reply(&want_snap), true)
                );
                std::fs::remove_dir_all(&root).ok();
            }
        }
    }
}

/// A fixed deterministic stream with triangles and duplicates.
fn fixed_stream(len: u32) -> Vec<Edge> {
    (0..len)
        .flat_map(|i| {
            [
                Edge::try_new(i % 17, (i * 3 + 1) % 17),
                Edge::try_new((i * 3 + 1) % 17, (i * 5 + 2) % 17),
                Edge::try_new(i % 17, (i * 5 + 2) % 17),
            ]
        })
        .flatten()
        .collect()
}

/// The degradation contract end to end: killing a shard mid-stream
/// flips `HEALTH` to `state=degraded shards=2/3` while queries keep
/// answering from the survivors (as the smaller, still-valid REPT
/// configuration), and reviving the shard replays the buffered tail
/// and restores bit-identical equality with a standalone core.
#[test]
fn killed_shard_degrades_health_and_rejoins_bit_identically() {
    let cfg = ReptConfig::new(2, 11)
        .with_seed(42)
        .with_eta(true)
        .with_locals(true);
    let engine = Engine::default();
    let stream = fixed_stream(120);
    let split = stream.len() / 2;

    let cores = sliced_cores(cfg, engine, 3, 16, None);
    let mut coord = coordinator_over(&cores, cfg, engine, 16);
    for chunk in stream[..split].chunks(7) {
        coord.ingest(chunk.to_vec()).expect("ingest");
    }
    coord.flush();
    assert!(!coord.health().degraded());

    // Kill shard 1: the coordinator stops fanning to it and buffers.
    coord.kill_shard(1);
    for chunk in stream[split..].chunks(7) {
        coord
            .ingest(chunk.to_vec())
            .expect("degraded ingest still acks");
    }
    let position = coord.flush();
    assert_eq!(position, stream.len() as u64);
    let health = coord.health();
    assert!(health.degraded());
    assert_eq!((health.alive, health.total), (2, 3));
    assert_eq!(
        format_cluster_health(&health),
        format!("OK HEALTH tenant=default state=degraded shards=2/3 position={position}")
    );
    // Queries answer from the survivors: a valid smaller configuration
    // (shard 1 owned 2 of the 6 groups → 4 of the 11 processors).
    let degraded = coord.snapshot();
    assert_eq!(degraded.position, position);
    assert_eq!(degraded.c, 7);
    assert!(degraded.global >= 0.0);

    // Revive: shard 1's core never saw the buffered second half; the
    // replay buffer starts exactly at its position and closes the gap.
    coord
        .revive_shard(1, ShardLink::local(Arc::clone(&cores[1])))
        .expect("rejoin");
    assert!(!coord.health().degraded());
    assert_eq!(coord.flush(), stream.len() as u64);
    let rejoined = coord.snapshot();
    assert_eq!(rejoined.c, 11);

    let standalone = ServeCore::start(
        ServeConfig::new(cfg)
            .with_engine(engine)
            .with_snapshot_every(16),
    )
    .expect("standalone");
    for chunk in stream.chunks(7) {
        standalone.ingest(chunk.to_vec()).expect("ingest");
    }
    standalone.flush();
    let want = standalone.snapshot();
    standalone.shutdown();
    assert_eq!(
        query_replies(&rejoined, &QUERY_NODES),
        query_replies(&want, &QUERY_NODES)
    );
}

/// A revived shard that is too far behind the replay buffer is refused
/// with a typed error instead of silently serving a gap.
#[test]
fn revive_refuses_a_shard_behind_the_replay_buffer() {
    let cfg = ReptConfig::new(2, 8).with_seed(5);
    let engine = Engine::default();
    let cores = sliced_cores(cfg, engine, 2, 16, None);
    let mut coord = coordinator_over(&cores, cfg, engine, 16);
    coord
        .ingest(fixed_stream(20))
        .expect("pre-kill ingest reaches both shards");
    coord.kill_shard(1);
    coord.ingest(fixed_stream(10)).expect("buffered");

    // A fresh empty shard (position 0) predates the buffer entirely.
    let fresh = ServeCore::start(
        ServeConfig::new(cfg)
            .with_engine(engine)
            .with_group_slice(GroupSlice::new(1, 2)),
    )
    .expect("fresh shard");
    let err = coord
        .revive_shard(1, ShardLink::local(Arc::new(fresh)))
        .expect_err("gap below the buffer");
    assert!(err.contains("replay buffer"), "{err}");
    // The cluster stays degraded-but-answering.
    assert!(coord.health().degraded());
    assert!(coord.snapshot().global >= 0.0);
}

/// One raw line-protocol connection (no client-side retries or
/// parsing — the point is byte comparison of reply lines).
struct RawConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawConn {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone");
        Self {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end_matches('\n').to_string()
    }
}

/// The front-end proof over real TCP: a v2 client speaking raw lines to
/// the coordinator server gets byte-identical replies to a standalone
/// `rept-serve` server, for every distributed verb — including shared
/// grammar errors. Cluster-specific surface (`HEALTH`) is asserted in
/// its own format.
#[test]
fn tcp_front_end_is_indistinguishable_from_a_standalone_server() {
    let cfg = ReptConfig::new(2, 8)
        .with_seed(7)
        .with_eta(true)
        .with_locals(true);
    let every = 8u64;

    let shard_servers: Vec<Server> = (0..2u32)
        .map(|i| {
            Server::start(
                ServeConfig::new(cfg)
                    .with_snapshot_every(every)
                    .with_group_slice(GroupSlice::new(i, 2)),
                "127.0.0.1:0",
                1,
            )
            .expect("shard server")
        })
        .collect();
    let links = shard_servers
        .iter()
        .map(|s| ShardLink::connect(s.local_addr()).expect("link"))
        .collect();
    let coord = ShardCoordinator::start(
        CoordinatorConfig::new(cfg).with_snapshot_every(every),
        links,
    )
    .expect("coordinator");
    let front = CoordinatorServer::start(coord, "127.0.0.1:0", 2).expect("front-end");
    let standalone = Server::start(
        ServeConfig::new(cfg).with_snapshot_every(every),
        "127.0.0.1:0",
        1,
    )
    .expect("standalone server");

    let mut to_cluster = RawConn::connect(front.local_addr());
    let mut to_single = RawConn::connect(standalone.local_addr());

    let stream = fixed_stream(40);
    let mut ingest_lines: Vec<String> = Vec::new();
    for chunk in stream.chunks(9) {
        let mut line = "INGEST".to_string();
        for e in chunk {
            line.push_str(&format!(" {} {}", e.u(), e.v()));
        }
        ingest_lines.push(line);
    }
    let probes: Vec<&str> = ingest_lines
        .iter()
        .map(String::as_str)
        .chain([
            "FLUSH",
            "QUERY GLOBAL",
            "QUERY LOCAL 1",
            "QUERY LOCAL 5",
            "TOPK 4",
            "USE default",
            // Shared grammar errors come from the same parser.
            "QUERY LOCAL x",
            "INGEST 1 2 3",
            "NONSENSE",
        ])
        .collect();
    for line in probes {
        assert_eq!(
            to_cluster.send(line),
            to_single.send(line),
            "diverged on {line:?}"
        );
    }
    // The one intentionally cluster-specific reply.
    let health = to_cluster.send("HEALTH");
    assert!(
        health.starts_with("OK HEALTH tenant=default state=ok shards=2/2"),
        "{health}"
    );

    drop(to_cluster);
    drop(to_single);
    let coord = front.shutdown();
    assert_eq!(coord.position(), stream.len() as u64);
    standalone.shutdown();
    for server in shard_servers {
        server.shutdown();
    }
}
