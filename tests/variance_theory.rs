//! Empirical validation of the paper's variance theory (Theorem 3,
//! §III-B, §III-C) — the quantitative heart of the reproduction.

use rept::baselines::traits::StreamingTriangleCounter;
use rept::baselines::{Mascot, ParallelAveraged};
use rept::core::variance::{parallel_mascot_variance, rept_variance};
use rept::core::{Rept, ReptConfig};
use rept::exact::GroundTruth;
use rept::gen::{planted_cliques, stream_order, GeneratorConfig};
use rept::graph::Edge;
use rept::hash::SplitMix64;
use rept::metrics::Welford;

/// Fixture with a large η/τ ratio (covariance-dominated regime).
fn pair_rich_stream() -> (Vec<Edge>, GroundTruth) {
    let cfg = GeneratorConfig::new(300, 21);
    let stream = stream_order(planted_cliques(&cfg, 3, 16, 400), 5);
    let gt = GroundTruth::compute(&stream);
    assert!(
        gt.eta as f64 > 3.0 * gt.tau as f64,
        "fixture must be covariance-dominated: τ = {}, η = {}",
        gt.tau,
        gt.eta
    );
    (stream, gt)
}

fn empirical_variance(trials: u64, mut run: impl FnMut(u64) -> f64) -> (f64, f64) {
    let mut acc = Welford::new();
    for t in 0..trials {
        acc.push(run(t));
    }
    (acc.mean(), acc.variance().unwrap())
}

#[test]
fn theorem3_variance_c_less_than_m() {
    let (stream, gt) = pair_rich_stream();
    let (m, c) = (4u64, 2u64);
    let (mean, var) = empirical_variance(900, |s| {
        Rept::new(ReptConfig::new(m, c).with_seed(s).with_locals(false))
            .run_sequential(stream.iter().copied())
            .global
    });
    let theory = rept_variance(gt.tau as f64, gt.eta as f64, m, c);
    assert!((mean - gt.tau as f64).abs() < gt.tau as f64 * 0.05);
    assert!(
        (var - theory).abs() < theory * 0.2,
        "empirical {var} vs theory {theory}"
    );
}

#[test]
fn theorem3_variance_c_equals_m_eliminates_covariance() {
    // The headline special case: Var = τ(m−1) — *independent of η*.
    let (stream, gt) = pair_rich_stream();
    let m = 4u64;
    let (mean, var) = empirical_variance(900, |s| {
        Rept::new(ReptConfig::new(m, m).with_seed(s).with_locals(false))
            .run_sequential(stream.iter().copied())
            .global
    });
    let theory = gt.tau as f64 * (m as f64 - 1.0);
    let with_cov = parallel_mascot_variance(gt.tau as f64, gt.eta as f64, m, m);
    assert!((mean - gt.tau as f64).abs() < gt.tau as f64 * 0.05);
    assert!(
        (var - theory).abs() < theory * 0.2,
        "empirical {var} vs τ(m−1) = {theory}"
    );
    // And the η term really is gone: parallel MASCOT's variance at the
    // same (m, c) is far larger.
    assert!(
        with_cov > 3.0 * theory,
        "fixture not covariance-dominated enough: {with_cov} vs {theory}"
    );
    assert!(var < with_cov / 2.0);
}

#[test]
fn full_groups_variance_scales_as_one_over_c1() {
    let (stream, gt) = pair_rich_stream();
    let m = 3u64;
    let (_, var1) = empirical_variance(700, |s| {
        Rept::new(ReptConfig::new(m, m).with_seed(s).with_locals(false))
            .run_sequential(stream.iter().copied())
            .global
    });
    let (_, var3) = empirical_variance(700, |s| {
        Rept::new(
            ReptConfig::new(m, 3 * m)
                .with_seed(s + 10_000)
                .with_locals(false),
        )
        .run_sequential(stream.iter().copied())
        .global
    });
    let ratio = var1 / var3;
    assert!(
        (ratio - 3.0).abs() < 1.0,
        "c = 3m should cut variance ≈ 3×, got {ratio:.2}×"
    );
    let theory = rept_variance(gt.tau as f64, gt.eta as f64, m, 3 * m);
    assert!((var3 - theory).abs() < theory * 0.25);
}

#[test]
fn mixed_case_beats_its_components() {
    // c = c₁m + c₂ with the Graybill–Deal combination should produce
    // variance below the remainder group alone and near the theoretical
    // optimum (plug-in weights cost a little).
    let (stream, gt) = pair_rich_stream();
    let (m, c) = (4u64, 10u64); // c₁ = 2, c₂ = 2
    let (mean, var) = empirical_variance(900, |s| {
        Rept::new(ReptConfig::new(m, c).with_seed(s).with_locals(false))
            .run_sequential(stream.iter().copied())
            .global
    });
    let theory_optimal = rept_variance(gt.tau as f64, gt.eta as f64, m, c);
    // Remainder group alone = REPT(m, c₂ = 2).
    let remainder_alone = rept_variance(gt.tau as f64, gt.eta as f64, m, 2);
    assert!((mean - gt.tau as f64).abs() < gt.tau as f64 * 0.1);
    assert!(var < remainder_alone / 2.0);
    assert!(
        var < theory_optimal * 2.0 && var > theory_optimal * 0.5,
        "empirical {var} should be near optimal {theory_optimal}"
    );
}

#[test]
fn parallel_mascot_variance_matches_section_iii_c() {
    let (stream, gt) = pair_rich_stream();
    let (m, c) = (4u64, 4u64);
    let p = 1.0 / m as f64;
    let (mean, var) = empirical_variance(700, |t| {
        let root = SplitMix64::new(t);
        let mut par = ParallelAveraged::new(c as usize, |i| {
            Mascot::new(p, root.fork(i as u64).next_u64()).without_locals()
        });
        par.process_stream(stream.iter().copied());
        par.global_estimate()
    });
    let theory = parallel_mascot_variance(gt.tau as f64, gt.eta as f64, m, c);
    assert!((mean - gt.tau as f64).abs() < gt.tau as f64 * 0.05);
    assert!(
        (var - theory).abs() < theory * 0.2,
        "empirical {var} vs theory {theory}"
    );
}

#[test]
fn rept_empirically_beats_parallel_mascot() {
    // The paper's headline comparison, measured rather than asserted from
    // formulas: same m, same c, same stream.
    let (stream, gt) = pair_rich_stream();
    let (m, c) = (4u64, 4u64);
    let trials = 500;
    let (_, rept_var) = empirical_variance(trials, |s| {
        Rept::new(ReptConfig::new(m, c).with_seed(s).with_locals(false))
            .run_sequential(stream.iter().copied())
            .global
    });
    let (_, mascot_var) = empirical_variance(trials, |t| {
        let root = SplitMix64::new(t ^ 0xABCD);
        let mut par = ParallelAveraged::new(c as usize, |i| {
            Mascot::new(1.0 / m as f64, root.fork(i as u64).next_u64()).without_locals()
        });
        par.process_stream(stream.iter().copied());
        par.global_estimate()
    });
    let gain = mascot_var / rept_var;
    let theory_gain = parallel_mascot_variance(gt.tau as f64, gt.eta as f64, m, c)
        / rept_variance(gt.tau as f64, gt.eta as f64, m, c);
    assert!(
        gain > theory_gain * 0.5 && gain > 2.0,
        "measured gain {gain:.2}× vs theory {theory_gain:.2}×"
    );
}

#[test]
fn local_estimates_are_unbiased_too() {
    // Theorem 3 also covers τ̂_v; check the node with the largest τ_v.
    let (stream, gt) = pair_rich_stream();
    let (&star_node, &star_tau) = gt
        .tau_v
        .iter()
        .max_by_key(|(_, &t)| t)
        .expect("triangles exist");
    let trials = 600;
    let mut acc = Welford::new();
    for s in 0..trials {
        let est =
            Rept::new(ReptConfig::new(4, 4).with_seed(s)).run_sequential(stream.iter().copied());
        acc.push(est.local(star_node));
    }
    let mean = acc.mean();
    assert!(
        (mean - star_tau as f64).abs() < star_tau as f64 * 0.1,
        "E[τ̂_v] = {mean} vs τ_v = {star_tau}"
    );
    // Var(τ̂_v) = τ_v(m−1) at c = m (η_v term eliminated).
    let var = acc.variance().unwrap();
    let theory = star_tau as f64 * 3.0;
    assert!(
        (var - theory).abs() < theory * 0.35,
        "Var(τ̂_v) = {var} vs τ_v(m−1) = {theory}"
    );
}
